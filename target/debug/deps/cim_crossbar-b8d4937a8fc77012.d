/root/repo/target/debug/deps/cim_crossbar-b8d4937a8fc77012.d: crates/crossbar/src/lib.rs crates/crossbar/src/array.rs crates/crossbar/src/cell.rs crates/crossbar/src/endurance.rs crates/crossbar/src/energy.rs crates/crossbar/src/error.rs crates/crossbar/src/exec.rs crates/crossbar/src/geometry.rs crates/crossbar/src/isa.rs crates/crossbar/src/meter.rs crates/crossbar/src/packed.rs crates/crossbar/src/parasitics.rs crates/crossbar/src/stats.rs crates/crossbar/src/wear.rs

/root/repo/target/debug/deps/cim_crossbar-b8d4937a8fc77012: crates/crossbar/src/lib.rs crates/crossbar/src/array.rs crates/crossbar/src/cell.rs crates/crossbar/src/endurance.rs crates/crossbar/src/energy.rs crates/crossbar/src/error.rs crates/crossbar/src/exec.rs crates/crossbar/src/geometry.rs crates/crossbar/src/isa.rs crates/crossbar/src/meter.rs crates/crossbar/src/packed.rs crates/crossbar/src/parasitics.rs crates/crossbar/src/stats.rs crates/crossbar/src/wear.rs

crates/crossbar/src/lib.rs:
crates/crossbar/src/array.rs:
crates/crossbar/src/cell.rs:
crates/crossbar/src/endurance.rs:
crates/crossbar/src/energy.rs:
crates/crossbar/src/error.rs:
crates/crossbar/src/exec.rs:
crates/crossbar/src/geometry.rs:
crates/crossbar/src/isa.rs:
crates/crossbar/src/meter.rs:
crates/crossbar/src/packed.rs:
crates/crossbar/src/parasitics.rs:
crates/crossbar/src/stats.rs:
crates/crossbar/src/wear.rs:
