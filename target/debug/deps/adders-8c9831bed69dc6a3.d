/root/repo/target/debug/deps/adders-8c9831bed69dc6a3.d: crates/bench/benches/adders.rs Cargo.toml

/root/repo/target/debug/deps/libadders-8c9831bed69dc6a3.rmeta: crates/bench/benches/adders.rs Cargo.toml

crates/bench/benches/adders.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
