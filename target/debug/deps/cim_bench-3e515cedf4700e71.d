/root/repo/target/debug/deps/cim_bench-3e515cedf4700e71.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcim_bench-3e515cedf4700e71.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcim_bench-3e515cedf4700e71.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
