/root/repo/target/debug/deps/tracing-0dec4bdb6f2a56b3.d: crates/core/tests/tracing.rs Cargo.toml

/root/repo/target/debug/deps/libtracing-0dec4bdb6f2a56b3.rmeta: crates/core/tests/tracing.rs Cargo.toml

crates/core/tests/tracing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
