/root/repo/target/debug/deps/paper_claims-f346ff57cd97b72e.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-f346ff57cd97b72e: tests/paper_claims.rs

tests/paper_claims.rs:
