/root/repo/target/debug/deps/fig6_kogge_stone-af42811872acfa87.d: crates/bench/src/bin/fig6_kogge_stone.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_kogge_stone-af42811872acfa87.rmeta: crates/bench/src/bin/fig6_kogge_stone.rs Cargo.toml

crates/bench/src/bin/fig6_kogge_stone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
