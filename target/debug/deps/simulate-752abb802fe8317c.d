/root/repo/target/debug/deps/simulate-752abb802fe8317c.d: crates/bench/src/bin/simulate.rs Cargo.toml

/root/repo/target/debug/deps/libsimulate-752abb802fe8317c.rmeta: crates/bench/src/bin/simulate.rs Cargo.toml

crates/bench/src/bin/simulate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
