/root/repo/target/debug/deps/energy_table-2814b73338f4a87c.d: crates/bench/src/bin/energy_table.rs

/root/repo/target/debug/deps/energy_table-2814b73338f4a87c: crates/bench/src/bin/energy_table.rs

crates/bench/src/bin/energy_table.rs:
