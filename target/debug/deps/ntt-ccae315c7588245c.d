/root/repo/target/debug/deps/ntt-ccae315c7588245c.d: crates/bench/benches/ntt.rs Cargo.toml

/root/repo/target/debug/deps/libntt-ccae315c7588245c.rmeta: crates/bench/benches/ntt.rs Cargo.toml

crates/bench/benches/ntt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
