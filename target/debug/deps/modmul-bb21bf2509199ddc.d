/root/repo/target/debug/deps/modmul-bb21bf2509199ddc.d: crates/bench/benches/modmul.rs Cargo.toml

/root/repo/target/debug/deps/libmodmul-bb21bf2509199ddc.rmeta: crates/bench/benches/modmul.rs Cargo.toml

crates/bench/benches/modmul.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
