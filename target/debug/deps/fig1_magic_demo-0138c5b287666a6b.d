/root/repo/target/debug/deps/fig1_magic_demo-0138c5b287666a6b.d: crates/bench/src/bin/fig1_magic_demo.rs

/root/repo/target/debug/deps/fig1_magic_demo-0138c5b287666a6b: crates/bench/src/bin/fig1_magic_demo.rs

crates/bench/src/bin/fig1_magic_demo.rs:
