/root/repo/target/debug/deps/extensions-394a300d9bf26cce.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-394a300d9bf26cce.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
