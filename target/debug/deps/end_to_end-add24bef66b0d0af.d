/root/repo/target/debug/deps/end_to_end-add24bef66b0d0af.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-add24bef66b0d0af: tests/end_to_end.rs

tests/end_to_end.rs:
