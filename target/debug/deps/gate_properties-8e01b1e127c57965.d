/root/repo/target/debug/deps/gate_properties-8e01b1e127c57965.d: crates/logic/tests/gate_properties.rs

/root/repo/target/debug/deps/gate_properties-8e01b1e127c57965: crates/logic/tests/gate_properties.rs

crates/logic/tests/gate_properties.rs:
