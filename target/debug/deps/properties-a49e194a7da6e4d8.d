/root/repo/target/debug/deps/properties-a49e194a7da6e4d8.d: crates/baselines/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a49e194a7da6e4d8.rmeta: crates/baselines/tests/properties.rs Cargo.toml

crates/baselines/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
