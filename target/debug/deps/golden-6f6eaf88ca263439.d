/root/repo/target/debug/deps/golden-6f6eaf88ca263439.d: crates/trace/tests/golden.rs Cargo.toml

/root/repo/target/debug/deps/libgolden-6f6eaf88ca263439.rmeta: crates/trace/tests/golden.rs Cargo.toml

crates/trace/tests/golden.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/trace
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
