/root/repo/target/debug/deps/fig1_magic_demo-337d28653ba8cc8c.d: crates/bench/src/bin/fig1_magic_demo.rs

/root/repo/target/debug/deps/fig1_magic_demo-337d28653ba8cc8c: crates/bench/src/bin/fig1_magic_demo.rs

crates/bench/src/bin/fig1_magic_demo.rs:
