/root/repo/target/debug/deps/paper_claims-58b2c0b004fdcdce.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-58b2c0b004fdcdce: tests/paper_claims.rs

tests/paper_claims.rs:
