/root/repo/target/debug/deps/cim_ntt-4c7ef159d8bfcfd7.d: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

/root/repo/target/debug/deps/libcim_ntt-4c7ef159d8bfcfd7.rlib: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

/root/repo/target/debug/deps/libcim_ntt-4c7ef159d8bfcfd7.rmeta: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

crates/ntt/src/lib.rs:
crates/ntt/src/cost.rs:
crates/ntt/src/field.rs:
crates/ntt/src/ntt.rs:
crates/ntt/src/poly.rs:
crates/ntt/src/rns.rs:
crates/ntt/src/rns_poly.rs:
