/root/repo/target/debug/deps/energy_table-ef447229f61f36e9.d: crates/bench/src/bin/energy_table.rs Cargo.toml

/root/repo/target/debug/deps/libenergy_table-ef447229f61f36e9.rmeta: crates/bench/src/bin/energy_table.rs Cargo.toml

crates/bench/src/bin/energy_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
