/root/repo/target/debug/deps/cim_ntt-a7f05d7433bb2dac.d: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

/root/repo/target/debug/deps/libcim_ntt-a7f05d7433bb2dac.rlib: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

/root/repo/target/debug/deps/libcim_ntt-a7f05d7433bb2dac.rmeta: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

crates/ntt/src/lib.rs:
crates/ntt/src/cost.rs:
crates/ntt/src/field.rs:
crates/ntt/src/ntt.rs:
crates/ntt/src/poly.rs:
crates/ntt/src/rns.rs:
crates/ntt/src/rns_poly.rs:
