/root/repo/target/debug/deps/fig4-a2aebad43cdc573b.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-a2aebad43cdc573b: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
