/root/repo/target/debug/deps/parasitics_table-7afed1f91b6018c9.d: crates/bench/src/bin/parasitics_table.rs

/root/repo/target/debug/deps/parasitics_table-7afed1f91b6018c9: crates/bench/src/bin/parasitics_table.rs

crates/bench/src/bin/parasitics_table.rs:
