/root/repo/target/debug/deps/mutants-256d60284da5ccd8.d: crates/check/tests/mutants.rs

/root/repo/target/debug/deps/mutants-256d60284da5ccd8: crates/check/tests/mutants.rs

crates/check/tests/mutants.rs:
