/root/repo/target/debug/deps/properties-cedaa7fd74b0dbd9.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-cedaa7fd74b0dbd9: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
