/root/repo/target/debug/deps/cim_trace-384a788a3750a871.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/chrome.rs crates/trace/src/folded.rs crates/trace/src/json.rs crates/trace/src/summary.rs crates/trace/src/model.rs crates/trace/src/sink.rs crates/trace/src/tracer.rs

/root/repo/target/debug/deps/libcim_trace-384a788a3750a871.rlib: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/chrome.rs crates/trace/src/folded.rs crates/trace/src/json.rs crates/trace/src/summary.rs crates/trace/src/model.rs crates/trace/src/sink.rs crates/trace/src/tracer.rs

/root/repo/target/debug/deps/libcim_trace-384a788a3750a871.rmeta: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/chrome.rs crates/trace/src/folded.rs crates/trace/src/json.rs crates/trace/src/summary.rs crates/trace/src/model.rs crates/trace/src/sink.rs crates/trace/src/tracer.rs

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/chrome.rs:
crates/trace/src/folded.rs:
crates/trace/src/json.rs:
crates/trace/src/summary.rs:
crates/trace/src/model.rs:
crates/trace/src/sink.rs:
crates/trace/src/tracer.rs:
