/root/repo/target/debug/deps/cim_metrics-922a3c2cfa255cc9.d: crates/metrics/src/lib.rs crates/metrics/src/bridge.rs crates/metrics/src/histogram.rs crates/metrics/src/jsonval.rs crates/metrics/src/labels.rs crates/metrics/src/prometheus.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs

/root/repo/target/debug/deps/libcim_metrics-922a3c2cfa255cc9.rlib: crates/metrics/src/lib.rs crates/metrics/src/bridge.rs crates/metrics/src/histogram.rs crates/metrics/src/jsonval.rs crates/metrics/src/labels.rs crates/metrics/src/prometheus.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs

/root/repo/target/debug/deps/libcim_metrics-922a3c2cfa255cc9.rmeta: crates/metrics/src/lib.rs crates/metrics/src/bridge.rs crates/metrics/src/histogram.rs crates/metrics/src/jsonval.rs crates/metrics/src/labels.rs crates/metrics/src/prometheus.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs

crates/metrics/src/lib.rs:
crates/metrics/src/bridge.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/jsonval.rs:
crates/metrics/src/labels.rs:
crates/metrics/src/prometheus.rs:
crates/metrics/src/registry.rs:
crates/metrics/src/snapshot.rs:
