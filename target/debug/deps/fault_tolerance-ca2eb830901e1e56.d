/root/repo/target/debug/deps/fault_tolerance-ca2eb830901e1e56.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-ca2eb830901e1e56: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
