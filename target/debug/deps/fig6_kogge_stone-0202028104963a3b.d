/root/repo/target/debug/deps/fig6_kogge_stone-0202028104963a3b.d: crates/bench/src/bin/fig6_kogge_stone.rs

/root/repo/target/debug/deps/fig6_kogge_stone-0202028104963a3b: crates/bench/src/bin/fig6_kogge_stone.rs

crates/bench/src/bin/fig6_kogge_stone.rs:
