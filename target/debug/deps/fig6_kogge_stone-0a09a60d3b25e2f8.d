/root/repo/target/debug/deps/fig6_kogge_stone-0a09a60d3b25e2f8.d: crates/bench/src/bin/fig6_kogge_stone.rs

/root/repo/target/debug/deps/fig6_kogge_stone-0a09a60d3b25e2f8: crates/bench/src/bin/fig6_kogge_stone.rs

crates/bench/src/bin/fig6_kogge_stone.rs:
