/root/repo/target/debug/deps/modmul-8a85a1c6d6d7c719.d: crates/bench/benches/modmul.rs Cargo.toml

/root/repo/target/debug/deps/libmodmul-8a85a1c6d6d7c719.rmeta: crates/bench/benches/modmul.rs Cargo.toml

crates/bench/benches/modmul.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
