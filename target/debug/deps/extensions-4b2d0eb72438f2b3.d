/root/repo/target/debug/deps/extensions-4b2d0eb72438f2b3.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-4b2d0eb72438f2b3: tests/extensions.rs

tests/extensions.rs:
