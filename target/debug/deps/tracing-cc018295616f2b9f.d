/root/repo/target/debug/deps/tracing-cc018295616f2b9f.d: crates/core/tests/tracing.rs

/root/repo/target/debug/deps/tracing-cc018295616f2b9f: crates/core/tests/tracing.rs

crates/core/tests/tracing.rs:
