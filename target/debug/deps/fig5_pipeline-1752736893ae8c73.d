/root/repo/target/debug/deps/fig5_pipeline-1752736893ae8c73.d: crates/bench/src/bin/fig5_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_pipeline-1752736893ae8c73.rmeta: crates/bench/src/bin/fig5_pipeline.rs Cargo.toml

crates/bench/src/bin/fig5_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
