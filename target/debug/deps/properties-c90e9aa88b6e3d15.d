/root/repo/target/debug/deps/properties-c90e9aa88b6e3d15.d: crates/bigint/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-c90e9aa88b6e3d15.rmeta: crates/bigint/tests/properties.rs Cargo.toml

crates/bigint/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
