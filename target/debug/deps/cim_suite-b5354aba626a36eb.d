/root/repo/target/debug/deps/cim_suite-b5354aba626a36eb.d: src/lib.rs

/root/repo/target/debug/deps/cim_suite-b5354aba626a36eb: src/lib.rs

src/lib.rs:
