/root/repo/target/debug/deps/span_properties-a7224be190b20235.d: crates/trace/tests/span_properties.rs

/root/repo/target/debug/deps/span_properties-a7224be190b20235: crates/trace/tests/span_properties.rs

crates/trace/tests/span_properties.rs:
