/root/repo/target/debug/deps/fig2_tree-091dd9c3a40f7cbc.d: crates/bench/src/bin/fig2_tree.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_tree-091dd9c3a40f7cbc.rmeta: crates/bench/src/bin/fig2_tree.rs Cargo.toml

crates/bench/src/bin/fig2_tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
