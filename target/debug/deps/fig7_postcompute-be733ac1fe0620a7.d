/root/repo/target/debug/deps/fig7_postcompute-be733ac1fe0620a7.d: crates/bench/src/bin/fig7_postcompute.rs

/root/repo/target/debug/deps/fig7_postcompute-be733ac1fe0620a7: crates/bench/src/bin/fig7_postcompute.rs

crates/bench/src/bin/fig7_postcompute.rs:
