/root/repo/target/debug/deps/metrics_e2e-edc5e1d8f5939018.d: tests/metrics_e2e.rs

/root/repo/target/debug/deps/metrics_e2e-edc5e1d8f5939018: tests/metrics_e2e.rs

tests/metrics_e2e.rs:
