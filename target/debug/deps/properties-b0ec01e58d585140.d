/root/repo/target/debug/deps/properties-b0ec01e58d585140.d: crates/ntt/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b0ec01e58d585140.rmeta: crates/ntt/tests/properties.rs Cargo.toml

crates/ntt/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
