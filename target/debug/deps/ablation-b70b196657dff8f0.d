/root/repo/target/debug/deps/ablation-b70b196657dff8f0.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-b70b196657dff8f0.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
