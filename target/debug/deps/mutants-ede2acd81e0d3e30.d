/root/repo/target/debug/deps/mutants-ede2acd81e0d3e30.d: crates/check/tests/mutants.rs Cargo.toml

/root/repo/target/debug/deps/libmutants-ede2acd81e0d3e30.rmeta: crates/check/tests/mutants.rs Cargo.toml

crates/check/tests/mutants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
