/root/repo/target/debug/deps/energy_table-a2b51298d91bb563.d: crates/bench/src/bin/energy_table.rs

/root/repo/target/debug/deps/energy_table-a2b51298d91bb563: crates/bench/src/bin/energy_table.rs

crates/bench/src/bin/energy_table.rs:
