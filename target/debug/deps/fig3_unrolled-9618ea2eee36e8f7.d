/root/repo/target/debug/deps/fig3_unrolled-9618ea2eee36e8f7.d: crates/bench/src/bin/fig3_unrolled.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_unrolled-9618ea2eee36e8f7.rmeta: crates/bench/src/bin/fig3_unrolled.rs Cargo.toml

crates/bench/src/bin/fig3_unrolled.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
