/root/repo/target/debug/deps/sweep-f12959eccba48db3.d: crates/bench/src/bin/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsweep-f12959eccba48db3.rmeta: crates/bench/src/bin/sweep.rs Cargo.toml

crates/bench/src/bin/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
