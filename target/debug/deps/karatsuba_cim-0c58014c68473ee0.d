/root/repo/target/debug/deps/karatsuba_cim-0c58014c68473ee0.d: crates/core/src/lib.rs crates/core/src/chunks.rs crates/core/src/depth1.rs crates/core/src/cost.rs crates/core/src/metrics.rs crates/core/src/multiplier.rs crates/core/src/multiply.rs crates/core/src/pipeline.rs crates/core/src/postcompute.rs crates/core/src/precompute.rs crates/core/src/progcache.rs

/root/repo/target/debug/deps/libkaratsuba_cim-0c58014c68473ee0.rlib: crates/core/src/lib.rs crates/core/src/chunks.rs crates/core/src/depth1.rs crates/core/src/cost.rs crates/core/src/metrics.rs crates/core/src/multiplier.rs crates/core/src/multiply.rs crates/core/src/pipeline.rs crates/core/src/postcompute.rs crates/core/src/precompute.rs crates/core/src/progcache.rs

/root/repo/target/debug/deps/libkaratsuba_cim-0c58014c68473ee0.rmeta: crates/core/src/lib.rs crates/core/src/chunks.rs crates/core/src/depth1.rs crates/core/src/cost.rs crates/core/src/metrics.rs crates/core/src/multiplier.rs crates/core/src/multiply.rs crates/core/src/pipeline.rs crates/core/src/postcompute.rs crates/core/src/precompute.rs crates/core/src/progcache.rs

crates/core/src/lib.rs:
crates/core/src/chunks.rs:
crates/core/src/depth1.rs:
crates/core/src/cost.rs:
crates/core/src/metrics.rs:
crates/core/src/multiplier.rs:
crates/core/src/multiply.rs:
crates/core/src/pipeline.rs:
crates/core/src/postcompute.rs:
crates/core/src/precompute.rs:
crates/core/src/progcache.rs:
