/root/repo/target/debug/deps/simulate-a8d23c7114ef7efb.d: crates/bench/src/bin/simulate.rs Cargo.toml

/root/repo/target/debug/deps/libsimulate-a8d23c7114ef7efb.rmeta: crates/bench/src/bin/simulate.rs Cargo.toml

crates/bench/src/bin/simulate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
