/root/repo/target/debug/deps/differential-f2224c5b3f8ae9d5.d: crates/check/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-f2224c5b3f8ae9d5.rmeta: crates/check/tests/differential.rs Cargo.toml

crates/check/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
