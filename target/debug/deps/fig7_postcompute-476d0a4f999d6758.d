/root/repo/target/debug/deps/fig7_postcompute-476d0a4f999d6758.d: crates/bench/src/bin/fig7_postcompute.rs

/root/repo/target/debug/deps/fig7_postcompute-476d0a4f999d6758: crates/bench/src/bin/fig7_postcompute.rs

crates/bench/src/bin/fig7_postcompute.rs:
