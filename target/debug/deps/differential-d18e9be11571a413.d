/root/repo/target/debug/deps/differential-d18e9be11571a413.d: crates/check/tests/differential.rs

/root/repo/target/debug/deps/differential-d18e9be11571a413: crates/check/tests/differential.rs

crates/check/tests/differential.rs:
