/root/repo/target/debug/deps/parasitics_table-1e2df1732322b80c.d: crates/bench/src/bin/parasitics_table.rs Cargo.toml

/root/repo/target/debug/deps/libparasitics_table-1e2df1732322b80c.rmeta: crates/bench/src/bin/parasitics_table.rs Cargo.toml

crates/bench/src/bin/parasitics_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
