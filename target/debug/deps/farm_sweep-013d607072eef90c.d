/root/repo/target/debug/deps/farm_sweep-013d607072eef90c.d: crates/bench/src/bin/farm_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfarm_sweep-013d607072eef90c.rmeta: crates/bench/src/bin/farm_sweep.rs Cargo.toml

crates/bench/src/bin/farm_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
