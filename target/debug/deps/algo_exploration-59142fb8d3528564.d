/root/repo/target/debug/deps/algo_exploration-59142fb8d3528564.d: crates/bench/src/bin/algo_exploration.rs Cargo.toml

/root/repo/target/debug/deps/libalgo_exploration-59142fb8d3528564.rmeta: crates/bench/src/bin/algo_exploration.rs Cargo.toml

crates/bench/src/bin/algo_exploration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
