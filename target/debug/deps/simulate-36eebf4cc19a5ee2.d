/root/repo/target/debug/deps/simulate-36eebf4cc19a5ee2.d: crates/bench/src/bin/simulate.rs

/root/repo/target/debug/deps/simulate-36eebf4cc19a5ee2: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
