/root/repo/target/debug/deps/cim_ntt-e3e13a6b00878c91.d: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs Cargo.toml

/root/repo/target/debug/deps/libcim_ntt-e3e13a6b00878c91.rmeta: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs Cargo.toml

crates/ntt/src/lib.rs:
crates/ntt/src/cost.rs:
crates/ntt/src/field.rs:
crates/ntt/src/ntt.rs:
crates/ntt/src/poly.rs:
crates/ntt/src/rns.rs:
crates/ntt/src/rns_poly.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
