/root/repo/target/debug/deps/parasitics_table-9d351a0d66ada857.d: crates/bench/src/bin/parasitics_table.rs

/root/repo/target/debug/deps/parasitics_table-9d351a0d66ada857: crates/bench/src/bin/parasitics_table.rs

crates/bench/src/bin/parasitics_table.rs:
