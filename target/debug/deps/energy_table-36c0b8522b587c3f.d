/root/repo/target/debug/deps/energy_table-36c0b8522b587c3f.d: crates/bench/src/bin/energy_table.rs

/root/repo/target/debug/deps/energy_table-36c0b8522b587c3f: crates/bench/src/bin/energy_table.rs

crates/bench/src/bin/energy_table.rs:
