/root/repo/target/debug/deps/modmul-bab9eca5a3940574.d: crates/bench/benches/modmul.rs Cargo.toml

/root/repo/target/debug/deps/libmodmul-bab9eca5a3940574.rmeta: crates/bench/benches/modmul.rs Cargo.toml

crates/bench/benches/modmul.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
