/root/repo/target/debug/deps/determinism-08841aed429bd39f.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-08841aed429bd39f: tests/determinism.rs

tests/determinism.rs:
