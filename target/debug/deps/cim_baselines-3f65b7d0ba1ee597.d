/root/repo/target/debug/deps/cim_baselines-3f65b7d0ba1ee597.d: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/debug/deps/cim_baselines-3f65b7d0ba1ee597: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/interp.rs:
