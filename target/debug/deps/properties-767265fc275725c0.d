/root/repo/target/debug/deps/properties-767265fc275725c0.d: crates/modmul/tests/properties.rs

/root/repo/target/debug/deps/properties-767265fc275725c0: crates/modmul/tests/properties.rs

crates/modmul/tests/properties.rs:
