/root/repo/target/debug/deps/fig3_unrolled-853d32741fd2d1b9.d: crates/bench/src/bin/fig3_unrolled.rs

/root/repo/target/debug/deps/fig3_unrolled-853d32741fd2d1b9: crates/bench/src/bin/fig3_unrolled.rs

crates/bench/src/bin/fig3_unrolled.rs:
