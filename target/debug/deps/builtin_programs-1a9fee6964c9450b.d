/root/repo/target/debug/deps/builtin_programs-1a9fee6964c9450b.d: crates/check/tests/builtin_programs.rs

/root/repo/target/debug/deps/builtin_programs-1a9fee6964c9450b: crates/check/tests/builtin_programs.rs

crates/check/tests/builtin_programs.rs:
