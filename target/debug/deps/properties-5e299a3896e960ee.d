/root/repo/target/debug/deps/properties-5e299a3896e960ee.d: crates/crossbar/tests/properties.rs

/root/repo/target/debug/deps/properties-5e299a3896e960ee: crates/crossbar/tests/properties.rs

crates/crossbar/tests/properties.rs:
