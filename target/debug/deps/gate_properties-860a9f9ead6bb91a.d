/root/repo/target/debug/deps/gate_properties-860a9f9ead6bb91a.d: crates/logic/tests/gate_properties.rs

/root/repo/target/debug/deps/gate_properties-860a9f9ead6bb91a: crates/logic/tests/gate_properties.rs

crates/logic/tests/gate_properties.rs:
