/root/repo/target/debug/deps/cim_metrics-b89f05a0f7b8eedf.d: crates/metrics/src/lib.rs crates/metrics/src/bridge.rs crates/metrics/src/histogram.rs crates/metrics/src/jsonval.rs crates/metrics/src/labels.rs crates/metrics/src/prometheus.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libcim_metrics-b89f05a0f7b8eedf.rmeta: crates/metrics/src/lib.rs crates/metrics/src/bridge.rs crates/metrics/src/histogram.rs crates/metrics/src/jsonval.rs crates/metrics/src/labels.rs crates/metrics/src/prometheus.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/bridge.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/jsonval.rs:
crates/metrics/src/labels.rs:
crates/metrics/src/prometheus.rs:
crates/metrics/src/registry.rs:
crates/metrics/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
