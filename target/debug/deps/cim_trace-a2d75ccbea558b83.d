/root/repo/target/debug/deps/cim_trace-a2d75ccbea558b83.d: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/chrome.rs crates/trace/src/folded.rs crates/trace/src/json.rs crates/trace/src/summary.rs crates/trace/src/model.rs crates/trace/src/sink.rs crates/trace/src/tracer.rs Cargo.toml

/root/repo/target/debug/deps/libcim_trace-a2d75ccbea558b83.rmeta: crates/trace/src/lib.rs crates/trace/src/analysis.rs crates/trace/src/chrome.rs crates/trace/src/folded.rs crates/trace/src/json.rs crates/trace/src/summary.rs crates/trace/src/model.rs crates/trace/src/sink.rs crates/trace/src/tracer.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/analysis.rs:
crates/trace/src/chrome.rs:
crates/trace/src/folded.rs:
crates/trace/src/json.rs:
crates/trace/src/summary.rs:
crates/trace/src/model.rs:
crates/trace/src/sink.rs:
crates/trace/src/tracer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
