/root/repo/target/debug/deps/fig3_unrolled-b95c491e6fb918f3.d: crates/bench/src/bin/fig3_unrolled.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_unrolled-b95c491e6fb918f3.rmeta: crates/bench/src/bin/fig3_unrolled.rs Cargo.toml

crates/bench/src/bin/fig3_unrolled.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
