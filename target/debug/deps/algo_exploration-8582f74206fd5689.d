/root/repo/target/debug/deps/algo_exploration-8582f74206fd5689.d: crates/bench/src/bin/algo_exploration.rs

/root/repo/target/debug/deps/algo_exploration-8582f74206fd5689: crates/bench/src/bin/algo_exploration.rs

crates/bench/src/bin/algo_exploration.rs:
