/root/repo/target/debug/deps/energy_table-9a800facff1fda09.d: crates/bench/src/bin/energy_table.rs

/root/repo/target/debug/deps/energy_table-9a800facff1fda09: crates/bench/src/bin/energy_table.rs

crates/bench/src/bin/energy_table.rs:
