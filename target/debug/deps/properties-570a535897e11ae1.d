/root/repo/target/debug/deps/properties-570a535897e11ae1.d: crates/logic/tests/properties.rs

/root/repo/target/debug/deps/properties-570a535897e11ae1: crates/logic/tests/properties.rs

crates/logic/tests/properties.rs:
