/root/repo/target/debug/deps/adders-b23a2bbf00b10f42.d: crates/bench/benches/adders.rs Cargo.toml

/root/repo/target/debug/deps/libadders-b23a2bbf00b10f42.rmeta: crates/bench/benches/adders.rs Cargo.toml

crates/bench/benches/adders.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
