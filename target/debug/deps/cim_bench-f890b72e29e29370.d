/root/repo/target/debug/deps/cim_bench-f890b72e29e29370.d: crates/bench/src/lib.rs crates/bench/src/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libcim_bench-f890b72e29e29370.rmeta: crates/bench/src/lib.rs crates/bench/src/snapshot.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
