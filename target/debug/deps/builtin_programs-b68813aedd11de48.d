/root/repo/target/debug/deps/builtin_programs-b68813aedd11de48.d: crates/check/tests/builtin_programs.rs Cargo.toml

/root/repo/target/debug/deps/libbuiltin_programs-b68813aedd11de48.rmeta: crates/check/tests/builtin_programs.rs Cargo.toml

crates/check/tests/builtin_programs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
