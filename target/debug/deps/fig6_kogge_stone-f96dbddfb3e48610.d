/root/repo/target/debug/deps/fig6_kogge_stone-f96dbddfb3e48610.d: crates/bench/src/bin/fig6_kogge_stone.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_kogge_stone-f96dbddfb3e48610.rmeta: crates/bench/src/bin/fig6_kogge_stone.rs Cargo.toml

crates/bench/src/bin/fig6_kogge_stone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
