/root/repo/target/debug/deps/cim_baselines-0b8dac1421b78f13.d: crates/baselines/src/lib.rs crates/baselines/src/interp.rs Cargo.toml

/root/repo/target/debug/deps/libcim_baselines-0b8dac1421b78f13.rmeta: crates/baselines/src/lib.rs crates/baselines/src/interp.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/interp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
