/root/repo/target/debug/deps/histogram_properties-49a175926ff7bd7f.d: crates/metrics/tests/histogram_properties.rs Cargo.toml

/root/repo/target/debug/deps/libhistogram_properties-49a175926ff7bd7f.rmeta: crates/metrics/tests/histogram_properties.rs Cargo.toml

crates/metrics/tests/histogram_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
