/root/repo/target/debug/deps/properties-754bee388c581e41.d: crates/baselines/tests/properties.rs

/root/repo/target/debug/deps/properties-754bee388c581e41: crates/baselines/tests/properties.rs

crates/baselines/tests/properties.rs:
