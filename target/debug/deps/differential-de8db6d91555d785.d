/root/repo/target/debug/deps/differential-de8db6d91555d785.d: crates/check/tests/differential.rs Cargo.toml

/root/repo/target/debug/deps/libdifferential-de8db6d91555d785.rmeta: crates/check/tests/differential.rs Cargo.toml

crates/check/tests/differential.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
