/root/repo/target/debug/deps/fig2_tree-de28fd40da6cfb3e.d: crates/bench/src/bin/fig2_tree.rs

/root/repo/target/debug/deps/fig2_tree-de28fd40da6cfb3e: crates/bench/src/bin/fig2_tree.rs

crates/bench/src/bin/fig2_tree.rs:
