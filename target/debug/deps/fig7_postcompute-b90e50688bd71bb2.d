/root/repo/target/debug/deps/fig7_postcompute-b90e50688bd71bb2.d: crates/bench/src/bin/fig7_postcompute.rs

/root/repo/target/debug/deps/fig7_postcompute-b90e50688bd71bb2: crates/bench/src/bin/fig7_postcompute.rs

crates/bench/src/bin/fig7_postcompute.rs:
