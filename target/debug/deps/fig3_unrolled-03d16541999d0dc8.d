/root/repo/target/debug/deps/fig3_unrolled-03d16541999d0dc8.d: crates/bench/src/bin/fig3_unrolled.rs

/root/repo/target/debug/deps/fig3_unrolled-03d16541999d0dc8: crates/bench/src/bin/fig3_unrolled.rs

crates/bench/src/bin/fig3_unrolled.rs:
