/root/repo/target/debug/deps/determinism-c6ec6a88dc1adb71.d: tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-c6ec6a88dc1adb71.rmeta: tests/determinism.rs Cargo.toml

tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
