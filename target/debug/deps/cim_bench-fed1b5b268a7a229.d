/root/repo/target/debug/deps/cim_bench-fed1b5b268a7a229.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcim_bench-fed1b5b268a7a229.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
