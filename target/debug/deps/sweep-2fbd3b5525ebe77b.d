/root/repo/target/debug/deps/sweep-2fbd3b5525ebe77b.d: crates/bench/src/bin/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsweep-2fbd3b5525ebe77b.rmeta: crates/bench/src/bin/sweep.rs Cargo.toml

crates/bench/src/bin/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
