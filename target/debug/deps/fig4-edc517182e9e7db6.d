/root/repo/target/debug/deps/fig4-edc517182e9e7db6.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-edc517182e9e7db6: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
