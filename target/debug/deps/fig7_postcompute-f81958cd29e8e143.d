/root/repo/target/debug/deps/fig7_postcompute-f81958cd29e8e143.d: crates/bench/src/bin/fig7_postcompute.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_postcompute-f81958cd29e8e143.rmeta: crates/bench/src/bin/fig7_postcompute.rs Cargo.toml

crates/bench/src/bin/fig7_postcompute.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
