/root/repo/target/debug/deps/cim_suite-6aaa6ef402382ca1.d: src/lib.rs

/root/repo/target/debug/deps/cim_suite-6aaa6ef402382ca1: src/lib.rs

src/lib.rs:
