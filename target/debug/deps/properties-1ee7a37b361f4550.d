/root/repo/target/debug/deps/properties-1ee7a37b361f4550.d: crates/ntt/tests/properties.rs

/root/repo/target/debug/deps/properties-1ee7a37b361f4550: crates/ntt/tests/properties.rs

crates/ntt/tests/properties.rs:
