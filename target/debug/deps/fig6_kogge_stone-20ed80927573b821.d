/root/repo/target/debug/deps/fig6_kogge_stone-20ed80927573b821.d: crates/bench/src/bin/fig6_kogge_stone.rs

/root/repo/target/debug/deps/fig6_kogge_stone-20ed80927573b821: crates/bench/src/bin/fig6_kogge_stone.rs

crates/bench/src/bin/fig6_kogge_stone.rs:
