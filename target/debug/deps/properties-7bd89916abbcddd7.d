/root/repo/target/debug/deps/properties-7bd89916abbcddd7.d: crates/baselines/tests/properties.rs

/root/repo/target/debug/deps/properties-7bd89916abbcddd7: crates/baselines/tests/properties.rs

crates/baselines/tests/properties.rs:
