/root/repo/target/debug/deps/cim_baselines-592e3a0bb55e5def.d: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/debug/deps/libcim_baselines-592e3a0bb55e5def.rlib: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/debug/deps/libcim_baselines-592e3a0bb55e5def.rmeta: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/interp.rs:
