/root/repo/target/debug/deps/algo_exploration-0ecb84d2332df7e4.d: crates/bench/src/bin/algo_exploration.rs

/root/repo/target/debug/deps/algo_exploration-0ecb84d2332df7e4: crates/bench/src/bin/algo_exploration.rs

crates/bench/src/bin/algo_exploration.rs:
