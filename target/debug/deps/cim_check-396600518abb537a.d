/root/repo/target/debug/deps/cim_check-396600518abb537a.d: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

/root/repo/target/debug/deps/cim_check-396600518abb537a: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

crates/check/src/lib.rs:
crates/check/src/gen.rs:
crates/check/src/gold.rs:
crates/check/src/pressure.rs:
crates/check/src/verify.rs:
