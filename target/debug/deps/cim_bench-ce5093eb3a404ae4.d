/root/repo/target/debug/deps/cim_bench-ce5093eb3a404ae4.d: crates/bench/src/lib.rs crates/bench/src/snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libcim_bench-ce5093eb3a404ae4.rmeta: crates/bench/src/lib.rs crates/bench/src/snapshot.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
