/root/repo/target/debug/deps/determinism-9aedfc2e7e478b84.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-9aedfc2e7e478b84: tests/determinism.rs

tests/determinism.rs:
