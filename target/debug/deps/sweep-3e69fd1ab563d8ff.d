/root/repo/target/debug/deps/sweep-3e69fd1ab563d8ff.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-3e69fd1ab563d8ff: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
