/root/repo/target/debug/deps/stages-29824d363d45cead.d: crates/bench/benches/stages.rs

/root/repo/target/debug/deps/stages-29824d363d45cead: crates/bench/benches/stages.rs

crates/bench/benches/stages.rs:
