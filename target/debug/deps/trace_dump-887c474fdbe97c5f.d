/root/repo/target/debug/deps/trace_dump-887c474fdbe97c5f.d: crates/bench/src/bin/trace_dump.rs

/root/repo/target/debug/deps/trace_dump-887c474fdbe97c5f: crates/bench/src/bin/trace_dump.rs

crates/bench/src/bin/trace_dump.rs:
