/root/repo/target/debug/deps/cim_sched-6af712b4d2522c7c.d: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs

/root/repo/target/debug/deps/cim_sched-6af712b4d2522c7c: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs

crates/sched/src/lib.rs:
crates/sched/src/batch.rs:
crates/sched/src/job.rs:
crates/sched/src/policy.rs:
crates/sched/src/profile.rs:
crates/sched/src/report.rs:
crates/sched/src/scheduler.rs:
crates/sched/src/tile.rs:
