/root/repo/target/debug/deps/fig5_pipeline-d4078df895f508de.d: crates/bench/src/bin/fig5_pipeline.rs

/root/repo/target/debug/deps/fig5_pipeline-d4078df895f508de: crates/bench/src/bin/fig5_pipeline.rs

crates/bench/src/bin/fig5_pipeline.rs:
