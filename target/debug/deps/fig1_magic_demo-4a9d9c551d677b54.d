/root/repo/target/debug/deps/fig1_magic_demo-4a9d9c551d677b54.d: crates/bench/src/bin/fig1_magic_demo.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_magic_demo-4a9d9c551d677b54.rmeta: crates/bench/src/bin/fig1_magic_demo.rs Cargo.toml

crates/bench/src/bin/fig1_magic_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
