/root/repo/target/debug/deps/fault_tolerance-ef8b1d11de3c1702.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-ef8b1d11de3c1702: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
