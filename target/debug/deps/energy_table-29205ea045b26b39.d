/root/repo/target/debug/deps/energy_table-29205ea045b26b39.d: crates/bench/src/bin/energy_table.rs Cargo.toml

/root/repo/target/debug/deps/libenergy_table-29205ea045b26b39.rmeta: crates/bench/src/bin/energy_table.rs Cargo.toml

crates/bench/src/bin/energy_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
