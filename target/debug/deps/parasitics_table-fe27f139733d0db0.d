/root/repo/target/debug/deps/parasitics_table-fe27f139733d0db0.d: crates/bench/src/bin/parasitics_table.rs

/root/repo/target/debug/deps/parasitics_table-fe27f139733d0db0: crates/bench/src/bin/parasitics_table.rs

crates/bench/src/bin/parasitics_table.rs:
