/root/repo/target/debug/deps/farm_sweep-07f65e367bce8ea9.d: crates/bench/src/bin/farm_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfarm_sweep-07f65e367bce8ea9.rmeta: crates/bench/src/bin/farm_sweep.rs Cargo.toml

crates/bench/src/bin/farm_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
