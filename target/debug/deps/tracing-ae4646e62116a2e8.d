/root/repo/target/debug/deps/tracing-ae4646e62116a2e8.d: crates/core/tests/tracing.rs

/root/repo/target/debug/deps/tracing-ae4646e62116a2e8: crates/core/tests/tracing.rs

crates/core/tests/tracing.rs:
