/root/repo/target/debug/deps/bench_snapshot-44dce14573e2f785.d: crates/bench/src/bin/bench_snapshot.rs

/root/repo/target/debug/deps/bench_snapshot-44dce14573e2f785: crates/bench/src/bin/bench_snapshot.rs

crates/bench/src/bin/bench_snapshot.rs:
