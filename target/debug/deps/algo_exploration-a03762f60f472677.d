/root/repo/target/debug/deps/algo_exploration-a03762f60f472677.d: crates/bench/src/bin/algo_exploration.rs Cargo.toml

/root/repo/target/debug/deps/libalgo_exploration-a03762f60f472677.rmeta: crates/bench/src/bin/algo_exploration.rs Cargo.toml

crates/bench/src/bin/algo_exploration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
