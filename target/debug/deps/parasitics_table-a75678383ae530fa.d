/root/repo/target/debug/deps/parasitics_table-a75678383ae530fa.d: crates/bench/src/bin/parasitics_table.rs Cargo.toml

/root/repo/target/debug/deps/libparasitics_table-a75678383ae530fa.rmeta: crates/bench/src/bin/parasitics_table.rs Cargo.toml

crates/bench/src/bin/parasitics_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
