/root/repo/target/debug/deps/gate_properties-d0ad5ed58daf833d.d: crates/logic/tests/gate_properties.rs

/root/repo/target/debug/deps/gate_properties-d0ad5ed58daf833d: crates/logic/tests/gate_properties.rs

crates/logic/tests/gate_properties.rs:
