/root/repo/target/debug/deps/cim_logic-dec4f14f8d793a99.d: crates/logic/src/lib.rs crates/logic/src/condsub.rs crates/logic/src/gates.rs crates/logic/src/kogge_stone.rs crates/logic/src/magic_schoolbook.rs crates/logic/src/multpim.rs crates/logic/src/program.rs crates/logic/src/ripple.rs crates/logic/src/tmr.rs Cargo.toml

/root/repo/target/debug/deps/libcim_logic-dec4f14f8d793a99.rmeta: crates/logic/src/lib.rs crates/logic/src/condsub.rs crates/logic/src/gates.rs crates/logic/src/kogge_stone.rs crates/logic/src/magic_schoolbook.rs crates/logic/src/multpim.rs crates/logic/src/program.rs crates/logic/src/ripple.rs crates/logic/src/tmr.rs Cargo.toml

crates/logic/src/lib.rs:
crates/logic/src/condsub.rs:
crates/logic/src/gates.rs:
crates/logic/src/kogge_stone.rs:
crates/logic/src/magic_schoolbook.rs:
crates/logic/src/multpim.rs:
crates/logic/src/program.rs:
crates/logic/src/ripple.rs:
crates/logic/src/tmr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
