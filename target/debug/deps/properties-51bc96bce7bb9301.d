/root/repo/target/debug/deps/properties-51bc96bce7bb9301.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-51bc96bce7bb9301: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
