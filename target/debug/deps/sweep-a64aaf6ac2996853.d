/root/repo/target/debug/deps/sweep-a64aaf6ac2996853.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-a64aaf6ac2996853: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
