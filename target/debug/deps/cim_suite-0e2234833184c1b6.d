/root/repo/target/debug/deps/cim_suite-0e2234833184c1b6.d: src/lib.rs

/root/repo/target/debug/deps/cim_suite-0e2234833184c1b6: src/lib.rs

src/lib.rs:
