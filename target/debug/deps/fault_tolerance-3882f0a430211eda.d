/root/repo/target/debug/deps/fault_tolerance-3882f0a430211eda.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-3882f0a430211eda: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
