/root/repo/target/debug/deps/cim_baselines-431057367ecc4ba7.d: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/debug/deps/libcim_baselines-431057367ecc4ba7.rlib: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/debug/deps/libcim_baselines-431057367ecc4ba7.rmeta: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/interp.rs:
