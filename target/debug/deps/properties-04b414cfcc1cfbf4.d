/root/repo/target/debug/deps/properties-04b414cfcc1cfbf4.d: crates/ntt/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-04b414cfcc1cfbf4.rmeta: crates/ntt/tests/properties.rs Cargo.toml

crates/ntt/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
