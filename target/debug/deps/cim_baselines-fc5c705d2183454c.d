/root/repo/target/debug/deps/cim_baselines-fc5c705d2183454c.d: crates/baselines/src/lib.rs crates/baselines/src/interp.rs Cargo.toml

/root/repo/target/debug/deps/libcim_baselines-fc5c705d2183454c.rmeta: crates/baselines/src/lib.rs crates/baselines/src/interp.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/interp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
