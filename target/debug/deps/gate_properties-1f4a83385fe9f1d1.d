/root/repo/target/debug/deps/gate_properties-1f4a83385fe9f1d1.d: crates/logic/tests/gate_properties.rs

/root/repo/target/debug/deps/gate_properties-1f4a83385fe9f1d1: crates/logic/tests/gate_properties.rs

crates/logic/tests/gate_properties.rs:
