/root/repo/target/debug/deps/algo_exploration-217cd6aeaf656535.d: crates/bench/src/bin/algo_exploration.rs Cargo.toml

/root/repo/target/debug/deps/libalgo_exploration-217cd6aeaf656535.rmeta: crates/bench/src/bin/algo_exploration.rs Cargo.toml

crates/bench/src/bin/algo_exploration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
