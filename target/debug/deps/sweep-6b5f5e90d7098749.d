/root/repo/target/debug/deps/sweep-6b5f5e90d7098749.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-6b5f5e90d7098749: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
