/root/repo/target/debug/deps/span_properties-349affe2953cbf7b.d: crates/trace/tests/span_properties.rs Cargo.toml

/root/repo/target/debug/deps/libspan_properties-349affe2953cbf7b.rmeta: crates/trace/tests/span_properties.rs Cargo.toml

crates/trace/tests/span_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
