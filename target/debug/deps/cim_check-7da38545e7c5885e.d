/root/repo/target/debug/deps/cim_check-7da38545e7c5885e.d: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

/root/repo/target/debug/deps/libcim_check-7da38545e7c5885e.rlib: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

/root/repo/target/debug/deps/libcim_check-7da38545e7c5885e.rmeta: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

crates/check/src/lib.rs:
crates/check/src/gen.rs:
crates/check/src/gold.rs:
crates/check/src/pressure.rs:
crates/check/src/verify.rs:
