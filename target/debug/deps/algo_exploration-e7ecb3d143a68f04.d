/root/repo/target/debug/deps/algo_exploration-e7ecb3d143a68f04.d: crates/bench/src/bin/algo_exploration.rs

/root/repo/target/debug/deps/algo_exploration-e7ecb3d143a68f04: crates/bench/src/bin/algo_exploration.rs

crates/bench/src/bin/algo_exploration.rs:
