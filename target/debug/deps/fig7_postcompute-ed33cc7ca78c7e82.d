/root/repo/target/debug/deps/fig7_postcompute-ed33cc7ca78c7e82.d: crates/bench/src/bin/fig7_postcompute.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_postcompute-ed33cc7ca78c7e82.rmeta: crates/bench/src/bin/fig7_postcompute.rs Cargo.toml

crates/bench/src/bin/fig7_postcompute.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
