/root/repo/target/debug/deps/builtin_programs-bdd92280fd5c49f4.d: crates/check/tests/builtin_programs.rs

/root/repo/target/debug/deps/builtin_programs-bdd92280fd5c49f4: crates/check/tests/builtin_programs.rs

crates/check/tests/builtin_programs.rs:
