/root/repo/target/debug/deps/properties-cc0a966ad8778d30.d: crates/modmul/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-cc0a966ad8778d30.rmeta: crates/modmul/tests/properties.rs Cargo.toml

crates/modmul/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
