/root/repo/target/debug/deps/cim_suite-a19f7192cda93390.d: src/lib.rs

/root/repo/target/debug/deps/cim_suite-a19f7192cda93390: src/lib.rs

src/lib.rs:
