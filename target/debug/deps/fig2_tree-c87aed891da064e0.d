/root/repo/target/debug/deps/fig2_tree-c87aed891da064e0.d: crates/bench/src/bin/fig2_tree.rs

/root/repo/target/debug/deps/fig2_tree-c87aed891da064e0: crates/bench/src/bin/fig2_tree.rs

crates/bench/src/bin/fig2_tree.rs:
