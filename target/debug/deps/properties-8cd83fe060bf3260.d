/root/repo/target/debug/deps/properties-8cd83fe060bf3260.d: crates/ntt/tests/properties.rs

/root/repo/target/debug/deps/properties-8cd83fe060bf3260: crates/ntt/tests/properties.rs

crates/ntt/tests/properties.rs:
