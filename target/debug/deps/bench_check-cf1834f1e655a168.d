/root/repo/target/debug/deps/bench_check-cf1834f1e655a168.d: crates/bench/src/bin/bench_check.rs

/root/repo/target/debug/deps/bench_check-cf1834f1e655a168: crates/bench/src/bin/bench_check.rs

crates/bench/src/bin/bench_check.rs:
