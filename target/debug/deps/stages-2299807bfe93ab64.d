/root/repo/target/debug/deps/stages-2299807bfe93ab64.d: crates/bench/benches/stages.rs Cargo.toml

/root/repo/target/debug/deps/libstages-2299807bfe93ab64.rmeta: crates/bench/benches/stages.rs Cargo.toml

crates/bench/benches/stages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
