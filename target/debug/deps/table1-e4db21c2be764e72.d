/root/repo/target/debug/deps/table1-e4db21c2be764e72.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-e4db21c2be764e72: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
