/root/repo/target/debug/deps/simulate-c3e77d49331bc0fc.d: crates/bench/src/bin/simulate.rs

/root/repo/target/debug/deps/simulate-c3e77d49331bc0fc: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
