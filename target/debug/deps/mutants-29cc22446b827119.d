/root/repo/target/debug/deps/mutants-29cc22446b827119.d: crates/check/tests/mutants.rs Cargo.toml

/root/repo/target/debug/deps/libmutants-29cc22446b827119.rmeta: crates/check/tests/mutants.rs Cargo.toml

crates/check/tests/mutants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
