/root/repo/target/debug/deps/gate_properties-ef48e1c6452f88e3.d: crates/logic/tests/gate_properties.rs Cargo.toml

/root/repo/target/debug/deps/libgate_properties-ef48e1c6452f88e3.rmeta: crates/logic/tests/gate_properties.rs Cargo.toml

crates/logic/tests/gate_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
