/root/repo/target/debug/deps/fig1_magic_demo-7a31e019f8127dc8.d: crates/bench/src/bin/fig1_magic_demo.rs

/root/repo/target/debug/deps/fig1_magic_demo-7a31e019f8127dc8: crates/bench/src/bin/fig1_magic_demo.rs

crates/bench/src/bin/fig1_magic_demo.rs:
