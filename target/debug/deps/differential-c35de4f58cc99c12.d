/root/repo/target/debug/deps/differential-c35de4f58cc99c12.d: crates/check/tests/differential.rs

/root/repo/target/debug/deps/differential-c35de4f58cc99c12: crates/check/tests/differential.rs

crates/check/tests/differential.rs:
