/root/repo/target/debug/deps/properties-1bc33fe271acfb23.d: crates/baselines/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-1bc33fe271acfb23.rmeta: crates/baselines/tests/properties.rs Cargo.toml

crates/baselines/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
