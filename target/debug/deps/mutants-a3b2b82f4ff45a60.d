/root/repo/target/debug/deps/mutants-a3b2b82f4ff45a60.d: crates/check/tests/mutants.rs Cargo.toml

/root/repo/target/debug/deps/libmutants-a3b2b82f4ff45a60.rmeta: crates/check/tests/mutants.rs Cargo.toml

crates/check/tests/mutants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
