/root/repo/target/debug/deps/properties-ddf54d7e31f0e9f1.d: crates/logic/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ddf54d7e31f0e9f1.rmeta: crates/logic/tests/properties.rs Cargo.toml

crates/logic/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
