/root/repo/target/debug/deps/adders-1d16c34778a37817.d: crates/bench/benches/adders.rs Cargo.toml

/root/repo/target/debug/deps/libadders-1d16c34778a37817.rmeta: crates/bench/benches/adders.rs Cargo.toml

crates/bench/benches/adders.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
