/root/repo/target/debug/deps/fig1_magic_demo-0af85f4873de111e.d: crates/bench/src/bin/fig1_magic_demo.rs

/root/repo/target/debug/deps/fig1_magic_demo-0af85f4873de111e: crates/bench/src/bin/fig1_magic_demo.rs

crates/bench/src/bin/fig1_magic_demo.rs:
