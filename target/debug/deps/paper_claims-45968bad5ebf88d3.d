/root/repo/target/debug/deps/paper_claims-45968bad5ebf88d3.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-45968bad5ebf88d3: tests/paper_claims.rs

tests/paper_claims.rs:
