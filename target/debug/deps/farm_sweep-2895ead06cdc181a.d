/root/repo/target/debug/deps/farm_sweep-2895ead06cdc181a.d: crates/bench/src/bin/farm_sweep.rs Cargo.toml

/root/repo/target/debug/deps/libfarm_sweep-2895ead06cdc181a.rmeta: crates/bench/src/bin/farm_sweep.rs Cargo.toml

crates/bench/src/bin/farm_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
