/root/repo/target/debug/deps/properties-5d31f34cf8062167.d: crates/ntt/tests/properties.rs

/root/repo/target/debug/deps/properties-5d31f34cf8062167: crates/ntt/tests/properties.rs

crates/ntt/tests/properties.rs:
