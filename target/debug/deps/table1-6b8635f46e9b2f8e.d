/root/repo/target/debug/deps/table1-6b8635f46e9b2f8e.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-6b8635f46e9b2f8e: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
