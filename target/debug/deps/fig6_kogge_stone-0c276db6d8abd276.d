/root/repo/target/debug/deps/fig6_kogge_stone-0c276db6d8abd276.d: crates/bench/src/bin/fig6_kogge_stone.rs

/root/repo/target/debug/deps/fig6_kogge_stone-0c276db6d8abd276: crates/bench/src/bin/fig6_kogge_stone.rs

crates/bench/src/bin/fig6_kogge_stone.rs:
