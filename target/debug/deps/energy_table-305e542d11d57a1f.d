/root/repo/target/debug/deps/energy_table-305e542d11d57a1f.d: crates/bench/src/bin/energy_table.rs Cargo.toml

/root/repo/target/debug/deps/libenergy_table-305e542d11d57a1f.rmeta: crates/bench/src/bin/energy_table.rs Cargo.toml

crates/bench/src/bin/energy_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
