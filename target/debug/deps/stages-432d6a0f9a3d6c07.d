/root/repo/target/debug/deps/stages-432d6a0f9a3d6c07.d: crates/bench/benches/stages.rs Cargo.toml

/root/repo/target/debug/deps/libstages-432d6a0f9a3d6c07.rmeta: crates/bench/benches/stages.rs Cargo.toml

crates/bench/benches/stages.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
