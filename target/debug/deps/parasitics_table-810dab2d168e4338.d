/root/repo/target/debug/deps/parasitics_table-810dab2d168e4338.d: crates/bench/src/bin/parasitics_table.rs

/root/repo/target/debug/deps/parasitics_table-810dab2d168e4338: crates/bench/src/bin/parasitics_table.rs

crates/bench/src/bin/parasitics_table.rs:
