/root/repo/target/debug/deps/extensions-b164dd4c4bf13334.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-b164dd4c4bf13334: tests/extensions.rs

tests/extensions.rs:
