/root/repo/target/debug/deps/gate_properties-afd38ea8aeaa02cd.d: crates/logic/tests/gate_properties.rs Cargo.toml

/root/repo/target/debug/deps/libgate_properties-afd38ea8aeaa02cd.rmeta: crates/logic/tests/gate_properties.rs Cargo.toml

crates/logic/tests/gate_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
