/root/repo/target/debug/deps/cim_sched-489b3a7cd6e73fb0.d: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs

/root/repo/target/debug/deps/cim_sched-489b3a7cd6e73fb0: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs

crates/sched/src/lib.rs:
crates/sched/src/batch.rs:
crates/sched/src/job.rs:
crates/sched/src/metrics.rs:
crates/sched/src/policy.rs:
crates/sched/src/profile.rs:
crates/sched/src/report.rs:
crates/sched/src/scheduler.rs:
crates/sched/src/tile.rs:
