/root/repo/target/debug/deps/properties-c3e3e0fe7393ff3c.d: crates/logic/tests/properties.rs

/root/repo/target/debug/deps/properties-c3e3e0fe7393ff3c: crates/logic/tests/properties.rs

crates/logic/tests/properties.rs:
