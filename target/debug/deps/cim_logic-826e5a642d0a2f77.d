/root/repo/target/debug/deps/cim_logic-826e5a642d0a2f77.d: crates/logic/src/lib.rs crates/logic/src/condsub.rs crates/logic/src/gates.rs crates/logic/src/kogge_stone.rs crates/logic/src/magic_schoolbook.rs crates/logic/src/multpim.rs crates/logic/src/program.rs crates/logic/src/ripple.rs crates/logic/src/tmr.rs

/root/repo/target/debug/deps/cim_logic-826e5a642d0a2f77: crates/logic/src/lib.rs crates/logic/src/condsub.rs crates/logic/src/gates.rs crates/logic/src/kogge_stone.rs crates/logic/src/magic_schoolbook.rs crates/logic/src/multpim.rs crates/logic/src/program.rs crates/logic/src/ripple.rs crates/logic/src/tmr.rs

crates/logic/src/lib.rs:
crates/logic/src/condsub.rs:
crates/logic/src/gates.rs:
crates/logic/src/kogge_stone.rs:
crates/logic/src/magic_schoolbook.rs:
crates/logic/src/multpim.rs:
crates/logic/src/program.rs:
crates/logic/src/ripple.rs:
crates/logic/src/tmr.rs:
