/root/repo/target/debug/deps/cim_suite-e750e6a6aedc34d5.d: src/lib.rs

/root/repo/target/debug/deps/libcim_suite-e750e6a6aedc34d5.rlib: src/lib.rs

/root/repo/target/debug/deps/libcim_suite-e750e6a6aedc34d5.rmeta: src/lib.rs

src/lib.rs:
