/root/repo/target/debug/deps/table1-100fe56ca5c89d0f.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-100fe56ca5c89d0f: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
