/root/repo/target/debug/deps/end_to_end-a1082fad3436b8cc.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a1082fad3436b8cc: tests/end_to_end.rs

tests/end_to_end.rs:
