/root/repo/target/debug/deps/cim_baselines-c4329a9791eadd8d.d: crates/baselines/src/lib.rs crates/baselines/src/interp.rs Cargo.toml

/root/repo/target/debug/deps/libcim_baselines-c4329a9791eadd8d.rmeta: crates/baselines/src/lib.rs crates/baselines/src/interp.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/interp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
