/root/repo/target/debug/deps/cim_baselines-549268c3ce9582b5.d: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/debug/deps/cim_baselines-549268c3ce9582b5: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/interp.rs:
