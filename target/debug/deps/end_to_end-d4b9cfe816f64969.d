/root/repo/target/debug/deps/end_to_end-d4b9cfe816f64969.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d4b9cfe816f64969: tests/end_to_end.rs

tests/end_to_end.rs:
