/root/repo/target/debug/deps/fig6_kogge_stone-2a81c0979b1915d0.d: crates/bench/src/bin/fig6_kogge_stone.rs

/root/repo/target/debug/deps/fig6_kogge_stone-2a81c0979b1915d0: crates/bench/src/bin/fig6_kogge_stone.rs

crates/bench/src/bin/fig6_kogge_stone.rs:
