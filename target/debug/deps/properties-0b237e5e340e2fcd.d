/root/repo/target/debug/deps/properties-0b237e5e340e2fcd.d: crates/modmul/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-0b237e5e340e2fcd.rmeta: crates/modmul/tests/properties.rs Cargo.toml

crates/modmul/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
