/root/repo/target/debug/deps/fig2_tree-7e7c27f2b9f5ee7d.d: crates/bench/src/bin/fig2_tree.rs

/root/repo/target/debug/deps/fig2_tree-7e7c27f2b9f5ee7d: crates/bench/src/bin/fig2_tree.rs

crates/bench/src/bin/fig2_tree.rs:
