/root/repo/target/debug/deps/golden-b0c093a0ef4a506a.d: crates/trace/tests/golden.rs

/root/repo/target/debug/deps/golden-b0c093a0ef4a506a: crates/trace/tests/golden.rs

crates/trace/tests/golden.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/trace
