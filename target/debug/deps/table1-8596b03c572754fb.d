/root/repo/target/debug/deps/table1-8596b03c572754fb.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-8596b03c572754fb.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
