/root/repo/target/debug/deps/fig7_postcompute-3ce27a25adf2f549.d: crates/bench/src/bin/fig7_postcompute.rs

/root/repo/target/debug/deps/fig7_postcompute-3ce27a25adf2f549: crates/bench/src/bin/fig7_postcompute.rs

crates/bench/src/bin/fig7_postcompute.rs:
