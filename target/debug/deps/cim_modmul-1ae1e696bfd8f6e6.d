/root/repo/target/debug/deps/cim_modmul-1ae1e696bfd8f6e6.d: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs Cargo.toml

/root/repo/target/debug/deps/libcim_modmul-1ae1e696bfd8f6e6.rmeta: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs Cargo.toml

crates/modmul/src/lib.rs:
crates/modmul/src/barrett.rs:
crates/modmul/src/ec.rs:
crates/modmul/src/fields.rs:
crates/modmul/src/inmemory.rs:
crates/modmul/src/montgomery.rs:
crates/modmul/src/sparse.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
