/root/repo/target/debug/deps/cim_baselines-012adb4257149a85.d: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/debug/deps/libcim_baselines-012adb4257149a85.rlib: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/debug/deps/libcim_baselines-012adb4257149a85.rmeta: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/interp.rs:
