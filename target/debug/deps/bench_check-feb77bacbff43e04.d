/root/repo/target/debug/deps/bench_check-feb77bacbff43e04.d: crates/bench/src/bin/bench_check.rs Cargo.toml

/root/repo/target/debug/deps/libbench_check-feb77bacbff43e04.rmeta: crates/bench/src/bin/bench_check.rs Cargo.toml

crates/bench/src/bin/bench_check.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
