/root/repo/target/debug/deps/extensions-3c917ddd663efd72.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-3c917ddd663efd72: tests/extensions.rs

tests/extensions.rs:
