/root/repo/target/debug/deps/sweep-59063e077e122646.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-59063e077e122646: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
