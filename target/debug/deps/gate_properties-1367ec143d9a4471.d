/root/repo/target/debug/deps/gate_properties-1367ec143d9a4471.d: crates/logic/tests/gate_properties.rs Cargo.toml

/root/repo/target/debug/deps/libgate_properties-1367ec143d9a4471.rmeta: crates/logic/tests/gate_properties.rs Cargo.toml

crates/logic/tests/gate_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
