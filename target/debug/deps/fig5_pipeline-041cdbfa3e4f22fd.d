/root/repo/target/debug/deps/fig5_pipeline-041cdbfa3e4f22fd.d: crates/bench/src/bin/fig5_pipeline.rs

/root/repo/target/debug/deps/fig5_pipeline-041cdbfa3e4f22fd: crates/bench/src/bin/fig5_pipeline.rs

crates/bench/src/bin/fig5_pipeline.rs:
