/root/repo/target/debug/deps/fig3_unrolled-7bd5f965c1b4656f.d: crates/bench/src/bin/fig3_unrolled.rs

/root/repo/target/debug/deps/fig3_unrolled-7bd5f965c1b4656f: crates/bench/src/bin/fig3_unrolled.rs

crates/bench/src/bin/fig3_unrolled.rs:
