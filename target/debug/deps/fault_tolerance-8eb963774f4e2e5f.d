/root/repo/target/debug/deps/fault_tolerance-8eb963774f4e2e5f.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-8eb963774f4e2e5f: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
