/root/repo/target/debug/deps/fig2_tree-f701e0b39f9bac8e.d: crates/bench/src/bin/fig2_tree.rs Cargo.toml

/root/repo/target/debug/deps/libfig2_tree-f701e0b39f9bac8e.rmeta: crates/bench/src/bin/fig2_tree.rs Cargo.toml

crates/bench/src/bin/fig2_tree.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
