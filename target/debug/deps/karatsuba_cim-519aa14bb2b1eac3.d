/root/repo/target/debug/deps/karatsuba_cim-519aa14bb2b1eac3.d: crates/core/src/lib.rs crates/core/src/chunks.rs crates/core/src/depth1.rs crates/core/src/cost.rs crates/core/src/metrics.rs crates/core/src/multiplier.rs crates/core/src/multiply.rs crates/core/src/pipeline.rs crates/core/src/postcompute.rs crates/core/src/precompute.rs crates/core/src/progcache.rs Cargo.toml

/root/repo/target/debug/deps/libkaratsuba_cim-519aa14bb2b1eac3.rmeta: crates/core/src/lib.rs crates/core/src/chunks.rs crates/core/src/depth1.rs crates/core/src/cost.rs crates/core/src/metrics.rs crates/core/src/multiplier.rs crates/core/src/multiply.rs crates/core/src/pipeline.rs crates/core/src/postcompute.rs crates/core/src/precompute.rs crates/core/src/progcache.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/chunks.rs:
crates/core/src/depth1.rs:
crates/core/src/cost.rs:
crates/core/src/metrics.rs:
crates/core/src/multiplier.rs:
crates/core/src/multiply.rs:
crates/core/src/pipeline.rs:
crates/core/src/postcompute.rs:
crates/core/src/precompute.rs:
crates/core/src/progcache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
