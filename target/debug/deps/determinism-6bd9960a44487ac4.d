/root/repo/target/debug/deps/determinism-6bd9960a44487ac4.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-6bd9960a44487ac4: tests/determinism.rs

tests/determinism.rs:
