/root/repo/target/debug/deps/properties-e483b651424634cd.d: crates/core/tests/properties.rs

/root/repo/target/debug/deps/properties-e483b651424634cd: crates/core/tests/properties.rs

crates/core/tests/properties.rs:
