/root/repo/target/debug/deps/fig1_magic_demo-e2216630c8e2e8fd.d: crates/bench/src/bin/fig1_magic_demo.rs Cargo.toml

/root/repo/target/debug/deps/libfig1_magic_demo-e2216630c8e2e8fd.rmeta: crates/bench/src/bin/fig1_magic_demo.rs Cargo.toml

crates/bench/src/bin/fig1_magic_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
