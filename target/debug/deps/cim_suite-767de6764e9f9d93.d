/root/repo/target/debug/deps/cim_suite-767de6764e9f9d93.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcim_suite-767de6764e9f9d93.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
