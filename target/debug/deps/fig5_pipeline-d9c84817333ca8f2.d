/root/repo/target/debug/deps/fig5_pipeline-d9c84817333ca8f2.d: crates/bench/src/bin/fig5_pipeline.rs

/root/repo/target/debug/deps/fig5_pipeline-d9c84817333ca8f2: crates/bench/src/bin/fig5_pipeline.rs

crates/bench/src/bin/fig5_pipeline.rs:
