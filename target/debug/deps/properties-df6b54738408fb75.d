/root/repo/target/debug/deps/properties-df6b54738408fb75.d: crates/baselines/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-df6b54738408fb75.rmeta: crates/baselines/tests/properties.rs Cargo.toml

crates/baselines/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
