/root/repo/target/debug/deps/fig6_kogge_stone-ae5ca0cad22e6a86.d: crates/bench/src/bin/fig6_kogge_stone.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_kogge_stone-ae5ca0cad22e6a86.rmeta: crates/bench/src/bin/fig6_kogge_stone.rs Cargo.toml

crates/bench/src/bin/fig6_kogge_stone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
