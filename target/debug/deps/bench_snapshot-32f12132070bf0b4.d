/root/repo/target/debug/deps/bench_snapshot-32f12132070bf0b4.d: crates/bench/src/bin/bench_snapshot.rs Cargo.toml

/root/repo/target/debug/deps/libbench_snapshot-32f12132070bf0b4.rmeta: crates/bench/src/bin/bench_snapshot.rs Cargo.toml

crates/bench/src/bin/bench_snapshot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
