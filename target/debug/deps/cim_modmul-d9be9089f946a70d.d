/root/repo/target/debug/deps/cim_modmul-d9be9089f946a70d.d: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs

/root/repo/target/debug/deps/libcim_modmul-d9be9089f946a70d.rlib: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs

/root/repo/target/debug/deps/libcim_modmul-d9be9089f946a70d.rmeta: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs

crates/modmul/src/lib.rs:
crates/modmul/src/barrett.rs:
crates/modmul/src/ec.rs:
crates/modmul/src/fields.rs:
crates/modmul/src/inmemory.rs:
crates/modmul/src/montgomery.rs:
crates/modmul/src/sparse.rs:
