/root/repo/target/debug/deps/cim_baselines-2f4e65ea7789a973.d: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/debug/deps/cim_baselines-2f4e65ea7789a973: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/interp.rs:
