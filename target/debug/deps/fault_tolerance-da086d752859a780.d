/root/repo/target/debug/deps/fault_tolerance-da086d752859a780.d: tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-da086d752859a780: tests/fault_tolerance.rs

tests/fault_tolerance.rs:
