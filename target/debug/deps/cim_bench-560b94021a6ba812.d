/root/repo/target/debug/deps/cim_bench-560b94021a6ba812.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/cim_bench-560b94021a6ba812: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
