/root/repo/target/debug/deps/cim_sched-1f04105e6d4f8279.d: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs

/root/repo/target/debug/deps/libcim_sched-1f04105e6d4f8279.rlib: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs

/root/repo/target/debug/deps/libcim_sched-1f04105e6d4f8279.rmeta: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs

crates/sched/src/lib.rs:
crates/sched/src/batch.rs:
crates/sched/src/job.rs:
crates/sched/src/metrics.rs:
crates/sched/src/policy.rs:
crates/sched/src/profile.rs:
crates/sched/src/report.rs:
crates/sched/src/scheduler.rs:
crates/sched/src/tile.rs:
