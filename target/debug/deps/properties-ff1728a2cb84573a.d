/root/repo/target/debug/deps/properties-ff1728a2cb84573a.d: crates/logic/tests/properties.rs

/root/repo/target/debug/deps/properties-ff1728a2cb84573a: crates/logic/tests/properties.rs

crates/logic/tests/properties.rs:
