/root/repo/target/debug/deps/cim_suite-77dc31cc83e9ba39.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcim_suite-77dc31cc83e9ba39.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
