/root/repo/target/debug/deps/paper_claims-d53250bf425145ad.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-d53250bf425145ad.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
