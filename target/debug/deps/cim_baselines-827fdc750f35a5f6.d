/root/repo/target/debug/deps/cim_baselines-827fdc750f35a5f6.d: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/debug/deps/libcim_baselines-827fdc750f35a5f6.rmeta: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/interp.rs:
