/root/repo/target/debug/deps/fig4-2365ed923ab7c15e.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-2365ed923ab7c15e: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
