/root/repo/target/debug/deps/cim_ntt-5b6b685e5dd6b74a.d: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

/root/repo/target/debug/deps/cim_ntt-5b6b685e5dd6b74a: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

crates/ntt/src/lib.rs:
crates/ntt/src/cost.rs:
crates/ntt/src/field.rs:
crates/ntt/src/ntt.rs:
crates/ntt/src/poly.rs:
crates/ntt/src/rns.rs:
crates/ntt/src/rns_poly.rs:
