/root/repo/target/debug/deps/stage_profile-2c7b764b2b0e7354.d: crates/bench/src/bin/stage_profile.rs Cargo.toml

/root/repo/target/debug/deps/libstage_profile-2c7b764b2b0e7354.rmeta: crates/bench/src/bin/stage_profile.rs Cargo.toml

crates/bench/src/bin/stage_profile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
