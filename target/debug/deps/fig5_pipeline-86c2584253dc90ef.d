/root/repo/target/debug/deps/fig5_pipeline-86c2584253dc90ef.d: crates/bench/src/bin/fig5_pipeline.rs

/root/repo/target/debug/deps/fig5_pipeline-86c2584253dc90ef: crates/bench/src/bin/fig5_pipeline.rs

crates/bench/src/bin/fig5_pipeline.rs:
