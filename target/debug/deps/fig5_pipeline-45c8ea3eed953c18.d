/root/repo/target/debug/deps/fig5_pipeline-45c8ea3eed953c18.d: crates/bench/src/bin/fig5_pipeline.rs

/root/repo/target/debug/deps/fig5_pipeline-45c8ea3eed953c18: crates/bench/src/bin/fig5_pipeline.rs

crates/bench/src/bin/fig5_pipeline.rs:
