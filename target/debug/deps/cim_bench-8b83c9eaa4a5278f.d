/root/repo/target/debug/deps/cim_bench-8b83c9eaa4a5278f.d: crates/bench/src/lib.rs crates/bench/src/snapshot.rs

/root/repo/target/debug/deps/libcim_bench-8b83c9eaa4a5278f.rlib: crates/bench/src/lib.rs crates/bench/src/snapshot.rs

/root/repo/target/debug/deps/libcim_bench-8b83c9eaa4a5278f.rmeta: crates/bench/src/lib.rs crates/bench/src/snapshot.rs

crates/bench/src/lib.rs:
crates/bench/src/snapshot.rs:
