/root/repo/target/debug/deps/cim_bench-16346c5f919eb576.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/cim_bench-16346c5f919eb576: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
