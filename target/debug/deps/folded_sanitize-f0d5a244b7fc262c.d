/root/repo/target/debug/deps/folded_sanitize-f0d5a244b7fc262c.d: crates/trace/tests/folded_sanitize.rs

/root/repo/target/debug/deps/folded_sanitize-f0d5a244b7fc262c: crates/trace/tests/folded_sanitize.rs

crates/trace/tests/folded_sanitize.rs:
