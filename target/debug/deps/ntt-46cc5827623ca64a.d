/root/repo/target/debug/deps/ntt-46cc5827623ca64a.d: crates/bench/benches/ntt.rs Cargo.toml

/root/repo/target/debug/deps/libntt-46cc5827623ca64a.rmeta: crates/bench/benches/ntt.rs Cargo.toml

crates/bench/benches/ntt.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
