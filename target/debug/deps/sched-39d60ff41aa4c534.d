/root/repo/target/debug/deps/sched-39d60ff41aa4c534.d: crates/bench/benches/sched.rs Cargo.toml

/root/repo/target/debug/deps/libsched-39d60ff41aa4c534.rmeta: crates/bench/benches/sched.rs Cargo.toml

crates/bench/benches/sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
