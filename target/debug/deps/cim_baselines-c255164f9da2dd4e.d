/root/repo/target/debug/deps/cim_baselines-c255164f9da2dd4e.d: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/debug/deps/libcim_baselines-c255164f9da2dd4e.rlib: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/debug/deps/libcim_baselines-c255164f9da2dd4e.rmeta: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/interp.rs:
