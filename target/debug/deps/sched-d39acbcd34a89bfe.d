/root/repo/target/debug/deps/sched-d39acbcd34a89bfe.d: crates/bench/benches/sched.rs Cargo.toml

/root/repo/target/debug/deps/libsched-d39acbcd34a89bfe.rmeta: crates/bench/benches/sched.rs Cargo.toml

crates/bench/benches/sched.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
