/root/repo/target/debug/deps/properties-57cf4ee788e913da.d: crates/baselines/tests/properties.rs

/root/repo/target/debug/deps/properties-57cf4ee788e913da: crates/baselines/tests/properties.rs

crates/baselines/tests/properties.rs:
