/root/repo/target/debug/deps/cim_check-2dd4145b7f0175a1.d: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

/root/repo/target/debug/deps/cim_check-2dd4145b7f0175a1: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

crates/check/src/lib.rs:
crates/check/src/gen.rs:
crates/check/src/gold.rs:
crates/check/src/pressure.rs:
crates/check/src/verify.rs:
