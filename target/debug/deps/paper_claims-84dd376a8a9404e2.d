/root/repo/target/debug/deps/paper_claims-84dd376a8a9404e2.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-84dd376a8a9404e2: tests/paper_claims.rs

tests/paper_claims.rs:
