/root/repo/target/debug/deps/trace_dump-9da392b96962a60c.d: crates/bench/src/bin/trace_dump.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_dump-9da392b96962a60c.rmeta: crates/bench/src/bin/trace_dump.rs Cargo.toml

crates/bench/src/bin/trace_dump.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
