/root/repo/target/debug/deps/properties-40e7fefaae5103d1.d: crates/modmul/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-40e7fefaae5103d1.rmeta: crates/modmul/tests/properties.rs Cargo.toml

crates/modmul/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
