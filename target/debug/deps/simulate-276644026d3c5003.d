/root/repo/target/debug/deps/simulate-276644026d3c5003.d: crates/bench/src/bin/simulate.rs

/root/repo/target/debug/deps/simulate-276644026d3c5003: crates/bench/src/bin/simulate.rs

crates/bench/src/bin/simulate.rs:
