/root/repo/target/debug/deps/extensions-f2dc8f0d3953a416.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-f2dc8f0d3953a416: tests/extensions.rs

tests/extensions.rs:
