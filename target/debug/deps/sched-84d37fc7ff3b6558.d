/root/repo/target/debug/deps/sched-84d37fc7ff3b6558.d: crates/bench/benches/sched.rs

/root/repo/target/debug/deps/sched-84d37fc7ff3b6558: crates/bench/benches/sched.rs

crates/bench/benches/sched.rs:
