/root/repo/target/debug/deps/cim_bench-a7ea0642dd9a1cab.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcim_bench-a7ea0642dd9a1cab.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
