/root/repo/target/debug/deps/fig3_unrolled-662029655463f3cd.d: crates/bench/src/bin/fig3_unrolled.rs Cargo.toml

/root/repo/target/debug/deps/libfig3_unrolled-662029655463f3cd.rmeta: crates/bench/src/bin/fig3_unrolled.rs Cargo.toml

crates/bench/src/bin/fig3_unrolled.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
