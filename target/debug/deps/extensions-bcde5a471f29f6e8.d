/root/repo/target/debug/deps/extensions-bcde5a471f29f6e8.d: tests/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-bcde5a471f29f6e8.rmeta: tests/extensions.rs Cargo.toml

tests/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
