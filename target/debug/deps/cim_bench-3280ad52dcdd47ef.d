/root/repo/target/debug/deps/cim_bench-3280ad52dcdd47ef.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcim_bench-3280ad52dcdd47ef.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
