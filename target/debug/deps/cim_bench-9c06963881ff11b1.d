/root/repo/target/debug/deps/cim_bench-9c06963881ff11b1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/cim_bench-9c06963881ff11b1: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
