/root/repo/target/debug/deps/ablation-c4cb5b8be20e8745.d: crates/bench/benches/ablation.rs Cargo.toml

/root/repo/target/debug/deps/libablation-c4cb5b8be20e8745.rmeta: crates/bench/benches/ablation.rs Cargo.toml

crates/bench/benches/ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
