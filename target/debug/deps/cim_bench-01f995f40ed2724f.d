/root/repo/target/debug/deps/cim_bench-01f995f40ed2724f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libcim_bench-01f995f40ed2724f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
