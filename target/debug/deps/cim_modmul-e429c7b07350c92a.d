/root/repo/target/debug/deps/cim_modmul-e429c7b07350c92a.d: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs

/root/repo/target/debug/deps/cim_modmul-e429c7b07350c92a: crates/modmul/src/lib.rs crates/modmul/src/barrett.rs crates/modmul/src/ec.rs crates/modmul/src/fields.rs crates/modmul/src/inmemory.rs crates/modmul/src/montgomery.rs crates/modmul/src/sparse.rs

crates/modmul/src/lib.rs:
crates/modmul/src/barrett.rs:
crates/modmul/src/ec.rs:
crates/modmul/src/fields.rs:
crates/modmul/src/inmemory.rs:
crates/modmul/src/montgomery.rs:
crates/modmul/src/sparse.rs:
