/root/repo/target/debug/deps/simulate-473240c97f16aa6f.d: crates/bench/src/bin/simulate.rs Cargo.toml

/root/repo/target/debug/deps/libsimulate-473240c97f16aa6f.rmeta: crates/bench/src/bin/simulate.rs Cargo.toml

crates/bench/src/bin/simulate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
