/root/repo/target/debug/deps/folded_sanitize-a5dd6e1b893f180f.d: crates/trace/tests/folded_sanitize.rs Cargo.toml

/root/repo/target/debug/deps/libfolded_sanitize-a5dd6e1b893f180f.rmeta: crates/trace/tests/folded_sanitize.rs Cargo.toml

crates/trace/tests/folded_sanitize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
