/root/repo/target/debug/deps/cim_sched-db3a76de3e0aeb40.d: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs Cargo.toml

/root/repo/target/debug/deps/libcim_sched-db3a76de3e0aeb40.rmeta: crates/sched/src/lib.rs crates/sched/src/batch.rs crates/sched/src/job.rs crates/sched/src/metrics.rs crates/sched/src/policy.rs crates/sched/src/profile.rs crates/sched/src/report.rs crates/sched/src/scheduler.rs crates/sched/src/tile.rs Cargo.toml

crates/sched/src/lib.rs:
crates/sched/src/batch.rs:
crates/sched/src/job.rs:
crates/sched/src/metrics.rs:
crates/sched/src/policy.rs:
crates/sched/src/profile.rs:
crates/sched/src/report.rs:
crates/sched/src/scheduler.rs:
crates/sched/src/tile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
