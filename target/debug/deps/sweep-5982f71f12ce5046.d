/root/repo/target/debug/deps/sweep-5982f71f12ce5046.d: crates/bench/src/bin/sweep.rs

/root/repo/target/debug/deps/sweep-5982f71f12ce5046: crates/bench/src/bin/sweep.rs

crates/bench/src/bin/sweep.rs:
