/root/repo/target/debug/deps/fig6_kogge_stone-578d89f8840dceeb.d: crates/bench/src/bin/fig6_kogge_stone.rs Cargo.toml

/root/repo/target/debug/deps/libfig6_kogge_stone-578d89f8840dceeb.rmeta: crates/bench/src/bin/fig6_kogge_stone.rs Cargo.toml

crates/bench/src/bin/fig6_kogge_stone.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
