/root/repo/target/debug/deps/fig3_unrolled-9a0bc157b4a83869.d: crates/bench/src/bin/fig3_unrolled.rs

/root/repo/target/debug/deps/fig3_unrolled-9a0bc157b4a83869: crates/bench/src/bin/fig3_unrolled.rs

crates/bench/src/bin/fig3_unrolled.rs:
