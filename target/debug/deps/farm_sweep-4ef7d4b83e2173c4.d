/root/repo/target/debug/deps/farm_sweep-4ef7d4b83e2173c4.d: crates/bench/src/bin/farm_sweep.rs

/root/repo/target/debug/deps/farm_sweep-4ef7d4b83e2173c4: crates/bench/src/bin/farm_sweep.rs

crates/bench/src/bin/farm_sweep.rs:
