/root/repo/target/debug/deps/cim_bigint-320b17021ac457fa.d: crates/bigint/src/lib.rs crates/bigint/src/add.rs crates/bigint/src/convert.rs crates/bigint/src/div.rs crates/bigint/src/error.rs crates/bigint/src/gcd.rs crates/bigint/src/int.rs crates/bigint/src/prime.rs crates/bigint/src/mul/mod.rs crates/bigint/src/mul/karatsuba.rs crates/bigint/src/mul/karatsuba_unrolled.rs crates/bigint/src/mul/schoolbook.rs crates/bigint/src/mul/toom.rs crates/bigint/src/opcount.rs crates/bigint/src/ops.rs crates/bigint/src/rng.rs crates/bigint/src/shift.rs crates/bigint/src/uint.rs Cargo.toml

/root/repo/target/debug/deps/libcim_bigint-320b17021ac457fa.rmeta: crates/bigint/src/lib.rs crates/bigint/src/add.rs crates/bigint/src/convert.rs crates/bigint/src/div.rs crates/bigint/src/error.rs crates/bigint/src/gcd.rs crates/bigint/src/int.rs crates/bigint/src/prime.rs crates/bigint/src/mul/mod.rs crates/bigint/src/mul/karatsuba.rs crates/bigint/src/mul/karatsuba_unrolled.rs crates/bigint/src/mul/schoolbook.rs crates/bigint/src/mul/toom.rs crates/bigint/src/opcount.rs crates/bigint/src/ops.rs crates/bigint/src/rng.rs crates/bigint/src/shift.rs crates/bigint/src/uint.rs Cargo.toml

crates/bigint/src/lib.rs:
crates/bigint/src/add.rs:
crates/bigint/src/convert.rs:
crates/bigint/src/div.rs:
crates/bigint/src/error.rs:
crates/bigint/src/gcd.rs:
crates/bigint/src/int.rs:
crates/bigint/src/prime.rs:
crates/bigint/src/mul/mod.rs:
crates/bigint/src/mul/karatsuba.rs:
crates/bigint/src/mul/karatsuba_unrolled.rs:
crates/bigint/src/mul/schoolbook.rs:
crates/bigint/src/mul/toom.rs:
crates/bigint/src/opcount.rs:
crates/bigint/src/ops.rs:
crates/bigint/src/rng.rs:
crates/bigint/src/shift.rs:
crates/bigint/src/uint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
