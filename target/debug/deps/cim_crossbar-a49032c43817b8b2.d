/root/repo/target/debug/deps/cim_crossbar-a49032c43817b8b2.d: crates/crossbar/src/lib.rs crates/crossbar/src/array.rs crates/crossbar/src/cell.rs crates/crossbar/src/endurance.rs crates/crossbar/src/energy.rs crates/crossbar/src/error.rs crates/crossbar/src/exec.rs crates/crossbar/src/geometry.rs crates/crossbar/src/isa.rs crates/crossbar/src/meter.rs crates/crossbar/src/packed.rs crates/crossbar/src/parasitics.rs crates/crossbar/src/stats.rs crates/crossbar/src/wear.rs Cargo.toml

/root/repo/target/debug/deps/libcim_crossbar-a49032c43817b8b2.rmeta: crates/crossbar/src/lib.rs crates/crossbar/src/array.rs crates/crossbar/src/cell.rs crates/crossbar/src/endurance.rs crates/crossbar/src/energy.rs crates/crossbar/src/error.rs crates/crossbar/src/exec.rs crates/crossbar/src/geometry.rs crates/crossbar/src/isa.rs crates/crossbar/src/meter.rs crates/crossbar/src/packed.rs crates/crossbar/src/parasitics.rs crates/crossbar/src/stats.rs crates/crossbar/src/wear.rs Cargo.toml

crates/crossbar/src/lib.rs:
crates/crossbar/src/array.rs:
crates/crossbar/src/cell.rs:
crates/crossbar/src/endurance.rs:
crates/crossbar/src/energy.rs:
crates/crossbar/src/error.rs:
crates/crossbar/src/exec.rs:
crates/crossbar/src/geometry.rs:
crates/crossbar/src/isa.rs:
crates/crossbar/src/meter.rs:
crates/crossbar/src/packed.rs:
crates/crossbar/src/parasitics.rs:
crates/crossbar/src/stats.rs:
crates/crossbar/src/wear.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
