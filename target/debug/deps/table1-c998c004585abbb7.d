/root/repo/target/debug/deps/table1-c998c004585abbb7.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-c998c004585abbb7: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
