/root/repo/target/debug/deps/cim_metrics-eea171d7e68356ea.d: crates/metrics/src/lib.rs crates/metrics/src/bridge.rs crates/metrics/src/histogram.rs crates/metrics/src/jsonval.rs crates/metrics/src/labels.rs crates/metrics/src/prometheus.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs

/root/repo/target/debug/deps/cim_metrics-eea171d7e68356ea: crates/metrics/src/lib.rs crates/metrics/src/bridge.rs crates/metrics/src/histogram.rs crates/metrics/src/jsonval.rs crates/metrics/src/labels.rs crates/metrics/src/prometheus.rs crates/metrics/src/registry.rs crates/metrics/src/snapshot.rs

crates/metrics/src/lib.rs:
crates/metrics/src/bridge.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/jsonval.rs:
crates/metrics/src/labels.rs:
crates/metrics/src/prometheus.rs:
crates/metrics/src/registry.rs:
crates/metrics/src/snapshot.rs:
