/root/repo/target/debug/deps/algo_exploration-8eacdd08f6b1af3b.d: crates/bench/src/bin/algo_exploration.rs

/root/repo/target/debug/deps/algo_exploration-8eacdd08f6b1af3b: crates/bench/src/bin/algo_exploration.rs

crates/bench/src/bin/algo_exploration.rs:
