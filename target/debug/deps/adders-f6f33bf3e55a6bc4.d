/root/repo/target/debug/deps/adders-f6f33bf3e55a6bc4.d: crates/bench/benches/adders.rs

/root/repo/target/debug/deps/adders-f6f33bf3e55a6bc4: crates/bench/benches/adders.rs

crates/bench/benches/adders.rs:
