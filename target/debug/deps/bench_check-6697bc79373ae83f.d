/root/repo/target/debug/deps/bench_check-6697bc79373ae83f.d: crates/bench/src/bin/bench_check.rs

/root/repo/target/debug/deps/bench_check-6697bc79373ae83f: crates/bench/src/bin/bench_check.rs

crates/bench/src/bin/bench_check.rs:
