/root/repo/target/debug/deps/properties-0659d09d9db70bfd.d: crates/ntt/tests/properties.rs

/root/repo/target/debug/deps/properties-0659d09d9db70bfd: crates/ntt/tests/properties.rs

crates/ntt/tests/properties.rs:
