/root/repo/target/debug/deps/energy_table-57e746f19ff2e541.d: crates/bench/src/bin/energy_table.rs

/root/repo/target/debug/deps/energy_table-57e746f19ff2e541: crates/bench/src/bin/energy_table.rs

crates/bench/src/bin/energy_table.rs:
