/root/repo/target/debug/deps/properties-ed2a3ae8737ca8ed.d: crates/modmul/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-ed2a3ae8737ca8ed.rmeta: crates/modmul/tests/properties.rs Cargo.toml

crates/modmul/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
