/root/repo/target/debug/deps/cim_bench-abb0d85847dffee5.d: crates/bench/src/lib.rs crates/bench/src/snapshot.rs

/root/repo/target/debug/deps/cim_bench-abb0d85847dffee5: crates/bench/src/lib.rs crates/bench/src/snapshot.rs

crates/bench/src/lib.rs:
crates/bench/src/snapshot.rs:
