/root/repo/target/debug/deps/determinism-d3280d9de40e88b1.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-d3280d9de40e88b1: tests/determinism.rs

tests/determinism.rs:
