/root/repo/target/debug/deps/cim_ntt-7c07fb2c212164d2.d: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

/root/repo/target/debug/deps/libcim_ntt-7c07fb2c212164d2.rlib: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

/root/repo/target/debug/deps/libcim_ntt-7c07fb2c212164d2.rmeta: crates/ntt/src/lib.rs crates/ntt/src/cost.rs crates/ntt/src/field.rs crates/ntt/src/ntt.rs crates/ntt/src/poly.rs crates/ntt/src/rns.rs crates/ntt/src/rns_poly.rs

crates/ntt/src/lib.rs:
crates/ntt/src/cost.rs:
crates/ntt/src/field.rs:
crates/ntt/src/ntt.rs:
crates/ntt/src/poly.rs:
crates/ntt/src/rns.rs:
crates/ntt/src/rns_poly.rs:
