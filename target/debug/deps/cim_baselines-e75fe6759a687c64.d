/root/repo/target/debug/deps/cim_baselines-e75fe6759a687c64.d: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

/root/repo/target/debug/deps/cim_baselines-e75fe6759a687c64: crates/baselines/src/lib.rs crates/baselines/src/interp.rs

crates/baselines/src/lib.rs:
crates/baselines/src/interp.rs:
