/root/repo/target/debug/deps/farm_sweep-4e5c135ff8ed14e9.d: crates/bench/src/bin/farm_sweep.rs

/root/repo/target/debug/deps/farm_sweep-4e5c135ff8ed14e9: crates/bench/src/bin/farm_sweep.rs

crates/bench/src/bin/farm_sweep.rs:
