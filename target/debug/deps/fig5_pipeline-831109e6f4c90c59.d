/root/repo/target/debug/deps/fig5_pipeline-831109e6f4c90c59.d: crates/bench/src/bin/fig5_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libfig5_pipeline-831109e6f4c90c59.rmeta: crates/bench/src/bin/fig5_pipeline.rs Cargo.toml

crates/bench/src/bin/fig5_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
