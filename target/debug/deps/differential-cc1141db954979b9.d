/root/repo/target/debug/deps/differential-cc1141db954979b9.d: crates/check/tests/differential.rs

/root/repo/target/debug/deps/differential-cc1141db954979b9: crates/check/tests/differential.rs

crates/check/tests/differential.rs:
