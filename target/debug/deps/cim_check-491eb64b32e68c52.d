/root/repo/target/debug/deps/cim_check-491eb64b32e68c52.d: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

/root/repo/target/debug/deps/libcim_check-491eb64b32e68c52.rlib: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

/root/repo/target/debug/deps/libcim_check-491eb64b32e68c52.rmeta: crates/check/src/lib.rs crates/check/src/gen.rs crates/check/src/gold.rs crates/check/src/pressure.rs crates/check/src/verify.rs

crates/check/src/lib.rs:
crates/check/src/gen.rs:
crates/check/src/gold.rs:
crates/check/src/pressure.rs:
crates/check/src/verify.rs:
