/root/repo/target/debug/deps/sweep-a14fc1e97a5e92b5.d: crates/bench/src/bin/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libsweep-a14fc1e97a5e92b5.rmeta: crates/bench/src/bin/sweep.rs Cargo.toml

crates/bench/src/bin/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
