/root/repo/target/debug/deps/end_to_end-4d277b1fc5ed6bff.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-4d277b1fc5ed6bff: tests/end_to_end.rs

tests/end_to_end.rs:
