/root/repo/target/debug/deps/parasitics_table-edb7e1692892d37f.d: crates/bench/src/bin/parasitics_table.rs Cargo.toml

/root/repo/target/debug/deps/libparasitics_table-edb7e1692892d37f.rmeta: crates/bench/src/bin/parasitics_table.rs Cargo.toml

crates/bench/src/bin/parasitics_table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
