/root/repo/target/debug/deps/fig3_unrolled-8a3a4aca68dbf162.d: crates/bench/src/bin/fig3_unrolled.rs

/root/repo/target/debug/deps/fig3_unrolled-8a3a4aca68dbf162: crates/bench/src/bin/fig3_unrolled.rs

crates/bench/src/bin/fig3_unrolled.rs:
