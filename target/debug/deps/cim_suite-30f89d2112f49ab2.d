/root/repo/target/debug/deps/cim_suite-30f89d2112f49ab2.d: src/lib.rs

/root/repo/target/debug/deps/libcim_suite-30f89d2112f49ab2.rlib: src/lib.rs

/root/repo/target/debug/deps/libcim_suite-30f89d2112f49ab2.rmeta: src/lib.rs

src/lib.rs:
