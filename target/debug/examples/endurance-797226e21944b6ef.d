/root/repo/target/debug/examples/endurance-797226e21944b6ef.d: examples/endurance.rs

/root/repo/target/debug/examples/endurance-797226e21944b6ef: examples/endurance.rs

examples/endurance.rs:
