/root/repo/target/debug/examples/ntt_poly_mul-bd00e7322f02ca64.d: examples/ntt_poly_mul.rs Cargo.toml

/root/repo/target/debug/examples/libntt_poly_mul-bd00e7322f02ca64.rmeta: examples/ntt_poly_mul.rs Cargo.toml

examples/ntt_poly_mul.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
