/root/repo/target/debug/examples/ntt_poly_mul-574437e629e822d1.d: examples/ntt_poly_mul.rs

/root/repo/target/debug/examples/ntt_poly_mul-574437e629e822d1: examples/ntt_poly_mul.rs

examples/ntt_poly_mul.rs:
