/root/repo/target/debug/examples/zkp_msm-b5f8d0c45e7c2a06.d: examples/zkp_msm.rs

/root/repo/target/debug/examples/zkp_msm-b5f8d0c45e7c2a06: examples/zkp_msm.rs

examples/zkp_msm.rs:
