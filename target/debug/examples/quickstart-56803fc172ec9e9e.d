/root/repo/target/debug/examples/quickstart-56803fc172ec9e9e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-56803fc172ec9e9e: examples/quickstart.rs

examples/quickstart.rs:
