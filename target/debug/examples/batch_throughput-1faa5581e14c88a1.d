/root/repo/target/debug/examples/batch_throughput-1faa5581e14c88a1.d: examples/batch_throughput.rs

/root/repo/target/debug/examples/batch_throughput-1faa5581e14c88a1: examples/batch_throughput.rs

examples/batch_throughput.rs:
