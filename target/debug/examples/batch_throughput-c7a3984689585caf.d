/root/repo/target/debug/examples/batch_throughput-c7a3984689585caf.d: examples/batch_throughput.rs

/root/repo/target/debug/examples/batch_throughput-c7a3984689585caf: examples/batch_throughput.rs

examples/batch_throughput.rs:
