/root/repo/target/debug/examples/zkp_msm-0aceea06f3228091.d: examples/zkp_msm.rs

/root/repo/target/debug/examples/zkp_msm-0aceea06f3228091: examples/zkp_msm.rs

examples/zkp_msm.rs:
