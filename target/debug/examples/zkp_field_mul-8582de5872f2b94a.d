/root/repo/target/debug/examples/zkp_field_mul-8582de5872f2b94a.d: examples/zkp_field_mul.rs

/root/repo/target/debug/examples/zkp_field_mul-8582de5872f2b94a: examples/zkp_field_mul.rs

examples/zkp_field_mul.rs:
