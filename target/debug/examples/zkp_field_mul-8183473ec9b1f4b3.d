/root/repo/target/debug/examples/zkp_field_mul-8183473ec9b1f4b3.d: examples/zkp_field_mul.rs

/root/repo/target/debug/examples/zkp_field_mul-8183473ec9b1f4b3: examples/zkp_field_mul.rs

examples/zkp_field_mul.rs:
