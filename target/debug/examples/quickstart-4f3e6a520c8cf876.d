/root/repo/target/debug/examples/quickstart-4f3e6a520c8cf876.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-4f3e6a520c8cf876.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
