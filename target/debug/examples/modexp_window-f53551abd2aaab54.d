/root/repo/target/debug/examples/modexp_window-f53551abd2aaab54.d: examples/modexp_window.rs Cargo.toml

/root/repo/target/debug/examples/libmodexp_window-f53551abd2aaab54.rmeta: examples/modexp_window.rs Cargo.toml

examples/modexp_window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
