/root/repo/target/debug/examples/modexp_window-799fc696e6974164.d: examples/modexp_window.rs

/root/repo/target/debug/examples/modexp_window-799fc696e6974164: examples/modexp_window.rs

examples/modexp_window.rs:
