/root/repo/target/debug/examples/zkp_msm-6806235e4ca73e4b.d: examples/zkp_msm.rs Cargo.toml

/root/repo/target/debug/examples/libzkp_msm-6806235e4ca73e4b.rmeta: examples/zkp_msm.rs Cargo.toml

examples/zkp_msm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
