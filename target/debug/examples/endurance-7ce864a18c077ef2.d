/root/repo/target/debug/examples/endurance-7ce864a18c077ef2.d: examples/endurance.rs Cargo.toml

/root/repo/target/debug/examples/libendurance-7ce864a18c077ef2.rmeta: examples/endurance.rs Cargo.toml

examples/endurance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
