/root/repo/target/debug/examples/fault_injection-b1e87ffcad49e0e4.d: examples/fault_injection.rs

/root/repo/target/debug/examples/fault_injection-b1e87ffcad49e0e4: examples/fault_injection.rs

examples/fault_injection.rs:
