/root/repo/target/debug/examples/quickstart-de0c76dc255f1774.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-de0c76dc255f1774: examples/quickstart.rs

examples/quickstart.rs:
