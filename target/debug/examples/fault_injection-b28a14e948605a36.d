/root/repo/target/debug/examples/fault_injection-b28a14e948605a36.d: examples/fault_injection.rs

/root/repo/target/debug/examples/fault_injection-b28a14e948605a36: examples/fault_injection.rs

examples/fault_injection.rs:
