/root/repo/target/debug/examples/fault_injection-09f717259d2a41e3.d: examples/fault_injection.rs Cargo.toml

/root/repo/target/debug/examples/libfault_injection-09f717259d2a41e3.rmeta: examples/fault_injection.rs Cargo.toml

examples/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
