/root/repo/target/debug/examples/ntt_poly_mul-898a0a1e456aa069.d: examples/ntt_poly_mul.rs

/root/repo/target/debug/examples/ntt_poly_mul-898a0a1e456aa069: examples/ntt_poly_mul.rs

examples/ntt_poly_mul.rs:
