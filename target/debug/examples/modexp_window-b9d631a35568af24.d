/root/repo/target/debug/examples/modexp_window-b9d631a35568af24.d: examples/modexp_window.rs

/root/repo/target/debug/examples/modexp_window-b9d631a35568af24: examples/modexp_window.rs

examples/modexp_window.rs:
