/root/repo/target/debug/examples/quickstart-292ac8b7cb8a7879.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-292ac8b7cb8a7879: examples/quickstart.rs

examples/quickstart.rs:
