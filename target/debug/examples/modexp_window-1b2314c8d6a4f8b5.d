/root/repo/target/debug/examples/modexp_window-1b2314c8d6a4f8b5.d: examples/modexp_window.rs

/root/repo/target/debug/examples/modexp_window-1b2314c8d6a4f8b5: examples/modexp_window.rs

examples/modexp_window.rs:
