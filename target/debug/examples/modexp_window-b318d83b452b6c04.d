/root/repo/target/debug/examples/modexp_window-b318d83b452b6c04.d: examples/modexp_window.rs

/root/repo/target/debug/examples/modexp_window-b318d83b452b6c04: examples/modexp_window.rs

examples/modexp_window.rs:
