/root/repo/target/debug/examples/batch_throughput-52ddf5deca22bb68.d: examples/batch_throughput.rs

/root/repo/target/debug/examples/batch_throughput-52ddf5deca22bb68: examples/batch_throughput.rs

examples/batch_throughput.rs:
