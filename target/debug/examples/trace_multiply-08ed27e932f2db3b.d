/root/repo/target/debug/examples/trace_multiply-08ed27e932f2db3b.d: examples/trace_multiply.rs

/root/repo/target/debug/examples/trace_multiply-08ed27e932f2db3b: examples/trace_multiply.rs

examples/trace_multiply.rs:
