/root/repo/target/debug/examples/trace_multiply-c725d37485676b15.d: examples/trace_multiply.rs

/root/repo/target/debug/examples/trace_multiply-c725d37485676b15: examples/trace_multiply.rs

examples/trace_multiply.rs:
