/root/repo/target/debug/examples/fhe_modmul-43889dd518ba31fc.d: examples/fhe_modmul.rs

/root/repo/target/debug/examples/fhe_modmul-43889dd518ba31fc: examples/fhe_modmul.rs

examples/fhe_modmul.rs:
