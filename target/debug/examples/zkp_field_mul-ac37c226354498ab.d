/root/repo/target/debug/examples/zkp_field_mul-ac37c226354498ab.d: examples/zkp_field_mul.rs

/root/repo/target/debug/examples/zkp_field_mul-ac37c226354498ab: examples/zkp_field_mul.rs

examples/zkp_field_mul.rs:
