/root/repo/target/debug/examples/zkp_msm-f51950cf00e15d7b.d: examples/zkp_msm.rs Cargo.toml

/root/repo/target/debug/examples/libzkp_msm-f51950cf00e15d7b.rmeta: examples/zkp_msm.rs Cargo.toml

examples/zkp_msm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
