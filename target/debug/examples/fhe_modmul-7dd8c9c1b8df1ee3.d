/root/repo/target/debug/examples/fhe_modmul-7dd8c9c1b8df1ee3.d: examples/fhe_modmul.rs Cargo.toml

/root/repo/target/debug/examples/libfhe_modmul-7dd8c9c1b8df1ee3.rmeta: examples/fhe_modmul.rs Cargo.toml

examples/fhe_modmul.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
