/root/repo/target/debug/examples/zkp_field_mul-aa0d874486dadbb1.d: examples/zkp_field_mul.rs

/root/repo/target/debug/examples/zkp_field_mul-aa0d874486dadbb1: examples/zkp_field_mul.rs

examples/zkp_field_mul.rs:
