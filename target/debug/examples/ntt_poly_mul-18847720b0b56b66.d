/root/repo/target/debug/examples/ntt_poly_mul-18847720b0b56b66.d: examples/ntt_poly_mul.rs

/root/repo/target/debug/examples/ntt_poly_mul-18847720b0b56b66: examples/ntt_poly_mul.rs

examples/ntt_poly_mul.rs:
