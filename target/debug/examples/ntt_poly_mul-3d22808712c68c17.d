/root/repo/target/debug/examples/ntt_poly_mul-3d22808712c68c17.d: examples/ntt_poly_mul.rs

/root/repo/target/debug/examples/ntt_poly_mul-3d22808712c68c17: examples/ntt_poly_mul.rs

examples/ntt_poly_mul.rs:
