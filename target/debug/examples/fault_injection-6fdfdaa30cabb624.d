/root/repo/target/debug/examples/fault_injection-6fdfdaa30cabb624.d: examples/fault_injection.rs

/root/repo/target/debug/examples/fault_injection-6fdfdaa30cabb624: examples/fault_injection.rs

examples/fault_injection.rs:
