/root/repo/target/debug/examples/fault_injection-4be4e2ca238c7713.d: examples/fault_injection.rs

/root/repo/target/debug/examples/fault_injection-4be4e2ca238c7713: examples/fault_injection.rs

examples/fault_injection.rs:
