/root/repo/target/debug/examples/endurance-03d89e174748d320.d: examples/endurance.rs

/root/repo/target/debug/examples/endurance-03d89e174748d320: examples/endurance.rs

examples/endurance.rs:
