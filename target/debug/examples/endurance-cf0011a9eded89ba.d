/root/repo/target/debug/examples/endurance-cf0011a9eded89ba.d: examples/endurance.rs Cargo.toml

/root/repo/target/debug/examples/libendurance-cf0011a9eded89ba.rmeta: examples/endurance.rs Cargo.toml

examples/endurance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
