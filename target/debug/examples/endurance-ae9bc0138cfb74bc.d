/root/repo/target/debug/examples/endurance-ae9bc0138cfb74bc.d: examples/endurance.rs

/root/repo/target/debug/examples/endurance-ae9bc0138cfb74bc: examples/endurance.rs

examples/endurance.rs:
