/root/repo/target/debug/examples/endurance-53d2be4e060586ee.d: examples/endurance.rs Cargo.toml

/root/repo/target/debug/examples/libendurance-53d2be4e060586ee.rmeta: examples/endurance.rs Cargo.toml

examples/endurance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
