/root/repo/target/debug/examples/zkp_msm-5e6bfe62bab1fcc3.d: examples/zkp_msm.rs

/root/repo/target/debug/examples/zkp_msm-5e6bfe62bab1fcc3: examples/zkp_msm.rs

examples/zkp_msm.rs:
