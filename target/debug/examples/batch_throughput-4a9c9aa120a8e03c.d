/root/repo/target/debug/examples/batch_throughput-4a9c9aa120a8e03c.d: examples/batch_throughput.rs Cargo.toml

/root/repo/target/debug/examples/libbatch_throughput-4a9c9aa120a8e03c.rmeta: examples/batch_throughput.rs Cargo.toml

examples/batch_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
