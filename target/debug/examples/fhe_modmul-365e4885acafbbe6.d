/root/repo/target/debug/examples/fhe_modmul-365e4885acafbbe6.d: examples/fhe_modmul.rs

/root/repo/target/debug/examples/fhe_modmul-365e4885acafbbe6: examples/fhe_modmul.rs

examples/fhe_modmul.rs:
