/root/repo/target/debug/examples/quickstart-70ca529572709b8f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-70ca529572709b8f: examples/quickstart.rs

examples/quickstart.rs:
