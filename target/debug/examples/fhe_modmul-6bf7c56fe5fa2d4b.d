/root/repo/target/debug/examples/fhe_modmul-6bf7c56fe5fa2d4b.d: examples/fhe_modmul.rs

/root/repo/target/debug/examples/fhe_modmul-6bf7c56fe5fa2d4b: examples/fhe_modmul.rs

examples/fhe_modmul.rs:
