/root/repo/target/debug/examples/zkp_field_mul-239fbf64e650363b.d: examples/zkp_field_mul.rs Cargo.toml

/root/repo/target/debug/examples/libzkp_field_mul-239fbf64e650363b.rmeta: examples/zkp_field_mul.rs Cargo.toml

examples/zkp_field_mul.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
