/root/repo/target/debug/examples/fhe_modmul-029aaa3e031c993f.d: examples/fhe_modmul.rs

/root/repo/target/debug/examples/fhe_modmul-029aaa3e031c993f: examples/fhe_modmul.rs

examples/fhe_modmul.rs:
