/root/repo/target/debug/examples/batch_throughput-8ee668823b1825bf.d: examples/batch_throughput.rs Cargo.toml

/root/repo/target/debug/examples/libbatch_throughput-8ee668823b1825bf.rmeta: examples/batch_throughput.rs Cargo.toml

examples/batch_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
