/root/repo/target/debug/examples/ntt_poly_mul-fbb965d4046befbc.d: examples/ntt_poly_mul.rs

/root/repo/target/debug/examples/ntt_poly_mul-fbb965d4046befbc: examples/ntt_poly_mul.rs

examples/ntt_poly_mul.rs:
