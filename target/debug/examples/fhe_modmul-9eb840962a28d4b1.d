/root/repo/target/debug/examples/fhe_modmul-9eb840962a28d4b1.d: examples/fhe_modmul.rs Cargo.toml

/root/repo/target/debug/examples/libfhe_modmul-9eb840962a28d4b1.rmeta: examples/fhe_modmul.rs Cargo.toml

examples/fhe_modmul.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
