/root/repo/target/debug/examples/fault_injection-5be86cf603c53a1e.d: examples/fault_injection.rs Cargo.toml

/root/repo/target/debug/examples/libfault_injection-5be86cf603c53a1e.rmeta: examples/fault_injection.rs Cargo.toml

examples/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
