/root/repo/target/debug/examples/modexp_window-c23c2e1d1b6487bd.d: examples/modexp_window.rs Cargo.toml

/root/repo/target/debug/examples/libmodexp_window-c23c2e1d1b6487bd.rmeta: examples/modexp_window.rs Cargo.toml

examples/modexp_window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
