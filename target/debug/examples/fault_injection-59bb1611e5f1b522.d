/root/repo/target/debug/examples/fault_injection-59bb1611e5f1b522.d: examples/fault_injection.rs

/root/repo/target/debug/examples/fault_injection-59bb1611e5f1b522: examples/fault_injection.rs

examples/fault_injection.rs:
