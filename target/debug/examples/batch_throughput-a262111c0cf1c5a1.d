/root/repo/target/debug/examples/batch_throughput-a262111c0cf1c5a1.d: examples/batch_throughput.rs

/root/repo/target/debug/examples/batch_throughput-a262111c0cf1c5a1: examples/batch_throughput.rs

examples/batch_throughput.rs:
