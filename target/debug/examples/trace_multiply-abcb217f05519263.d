/root/repo/target/debug/examples/trace_multiply-abcb217f05519263.d: examples/trace_multiply.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_multiply-abcb217f05519263.rmeta: examples/trace_multiply.rs Cargo.toml

examples/trace_multiply.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
