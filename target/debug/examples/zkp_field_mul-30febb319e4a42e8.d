/root/repo/target/debug/examples/zkp_field_mul-30febb319e4a42e8.d: examples/zkp_field_mul.rs

/root/repo/target/debug/examples/zkp_field_mul-30febb319e4a42e8: examples/zkp_field_mul.rs

examples/zkp_field_mul.rs:
