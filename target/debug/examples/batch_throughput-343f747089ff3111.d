/root/repo/target/debug/examples/batch_throughput-343f747089ff3111.d: examples/batch_throughput.rs Cargo.toml

/root/repo/target/debug/examples/libbatch_throughput-343f747089ff3111.rmeta: examples/batch_throughput.rs Cargo.toml

examples/batch_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
