/root/repo/target/debug/examples/endurance-7240ae822793c936.d: examples/endurance.rs

/root/repo/target/debug/examples/endurance-7240ae822793c936: examples/endurance.rs

examples/endurance.rs:
