/root/repo/target/debug/examples/quickstart-c4fb956168216748.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-c4fb956168216748: examples/quickstart.rs

examples/quickstart.rs:
