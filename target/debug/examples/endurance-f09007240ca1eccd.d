/root/repo/target/debug/examples/endurance-f09007240ca1eccd.d: examples/endurance.rs Cargo.toml

/root/repo/target/debug/examples/libendurance-f09007240ca1eccd.rmeta: examples/endurance.rs Cargo.toml

examples/endurance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
