/root/repo/target/debug/examples/batch_throughput-347b9f42967d0305.d: examples/batch_throughput.rs

/root/repo/target/debug/examples/batch_throughput-347b9f42967d0305: examples/batch_throughput.rs

examples/batch_throughput.rs:
