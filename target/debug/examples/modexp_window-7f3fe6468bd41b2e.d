/root/repo/target/debug/examples/modexp_window-7f3fe6468bd41b2e.d: examples/modexp_window.rs Cargo.toml

/root/repo/target/debug/examples/libmodexp_window-7f3fe6468bd41b2e.rmeta: examples/modexp_window.rs Cargo.toml

examples/modexp_window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
