/root/repo/target/debug/examples/zkp_msm-514487f2bb958897.d: examples/zkp_msm.rs

/root/repo/target/debug/examples/zkp_msm-514487f2bb958897: examples/zkp_msm.rs

examples/zkp_msm.rs:
