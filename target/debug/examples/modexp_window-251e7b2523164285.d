/root/repo/target/debug/examples/modexp_window-251e7b2523164285.d: examples/modexp_window.rs

/root/repo/target/debug/examples/modexp_window-251e7b2523164285: examples/modexp_window.rs

examples/modexp_window.rs:
