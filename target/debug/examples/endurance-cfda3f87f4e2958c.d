/root/repo/target/debug/examples/endurance-cfda3f87f4e2958c.d: examples/endurance.rs

/root/repo/target/debug/examples/endurance-cfda3f87f4e2958c: examples/endurance.rs

examples/endurance.rs:
