/root/repo/target/debug/examples/fhe_modmul-5f93c110e5ee4e11.d: examples/fhe_modmul.rs

/root/repo/target/debug/examples/fhe_modmul-5f93c110e5ee4e11: examples/fhe_modmul.rs

examples/fhe_modmul.rs:
