/root/repo/target/debug/examples/trace_multiply-3e8824ffbdfdee1e.d: examples/trace_multiply.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_multiply-3e8824ffbdfdee1e.rmeta: examples/trace_multiply.rs Cargo.toml

examples/trace_multiply.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
