/root/repo/target/debug/examples/zkp_field_mul-ebddda3a442b85d3.d: examples/zkp_field_mul.rs Cargo.toml

/root/repo/target/debug/examples/libzkp_field_mul-ebddda3a442b85d3.rmeta: examples/zkp_field_mul.rs Cargo.toml

examples/zkp_field_mul.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
