/root/repo/target/debug/examples/zkp_msm-85589ca759beab4f.d: examples/zkp_msm.rs

/root/repo/target/debug/examples/zkp_msm-85589ca759beab4f: examples/zkp_msm.rs

examples/zkp_msm.rs:
