/root/repo/target/debug/examples/fhe_modmul-2928b5e116170cc3.d: examples/fhe_modmul.rs Cargo.toml

/root/repo/target/debug/examples/libfhe_modmul-2928b5e116170cc3.rmeta: examples/fhe_modmul.rs Cargo.toml

examples/fhe_modmul.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
