/root/repo/target/debug/examples/ntt_poly_mul-a9e2b4dcbdd797f1.d: examples/ntt_poly_mul.rs Cargo.toml

/root/repo/target/debug/examples/libntt_poly_mul-a9e2b4dcbdd797f1.rmeta: examples/ntt_poly_mul.rs Cargo.toml

examples/ntt_poly_mul.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
