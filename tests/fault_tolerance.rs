//! Failure-injection integration tests: stuck-at faults, strict-init
//! policing, and error propagation through the public APIs.

use cim_bigint::Uint;
use cim_crossbar::{Crossbar, CrossbarError, ExecConfig, Executor, Fault};
use cim_logic::kogge_stone::{AddOp, KoggeStoneAdder};

/// A stuck-at fault in the carry path must corrupt a carry-heavy
/// addition — and the simulator must report it (not crash, not hang).
#[test]
fn stuck_fault_corrupts_carry_chain() {
    let width = 8;
    let adder = KoggeStoneAdder::new(width);
    // all-ones + 1: every carry matters.
    let a = Uint::from_u64(255);
    let b = Uint::from_u64(1);

    let mut corrupted = 0;
    for col in 0..width {
        let mut array = Crossbar::new(adder.required_rows(), adder.required_cols()).unwrap();
        array.write_row(0, 0, &a.to_bits(width + 1)).unwrap();
        array.write_row(1, 0, &b.to_bits(width + 1)).unwrap();
        // Fault in the generate row of bank A (scratch role 1 → row 4).
        array.inject_fault(4, col, Some(Fault::StuckAt0)).unwrap();
        let mut exec = Executor::with_config(&mut array, ExecConfig { strict_init: false, record_trace: false });
        exec.run(&adder.program(AddOp::Add)).unwrap();
        let bits = exec.array().read_row_bits(2, 0..width + 1).unwrap();
        if Uint::from_bits(&bits) != Uint::from_u64(256) {
            corrupted += 1;
        }
    }
    assert!(corrupted > 0, "at least one generate-row fault must matter");
}

/// Strict-init mode turns the same fault into a diagnosable error
/// instead of silent corruption.
#[test]
fn strict_mode_flags_stuck_at_zero_output() {
    let adder = KoggeStoneAdder::new(4);
    let mut array = Crossbar::new(adder.required_rows(), adder.required_cols()).unwrap();
    array.write_row(0, 0, &Uint::from_u64(5).to_bits(5)).unwrap();
    array.write_row(1, 0, &Uint::from_u64(3).to_bits(5)).unwrap();
    array.inject_fault(4, 0, Some(Fault::StuckAt0)).unwrap();
    let mut exec = Executor::new(&mut array); // strict by default
    let err = exec.run(&adder.program(AddOp::Add)).unwrap_err();
    assert!(matches!(err, CrossbarError::OutputNotInitialized { .. }));
}

/// Out-of-range micro-ops surface as typed errors through every layer.
#[test]
fn geometry_errors_propagate() {
    let mut array = Crossbar::new(2, 2).unwrap();
    let mut exec = Executor::new(&mut array);
    let err = exec
        .step(&cim_crossbar::MicroOp::write_row(7, &[true]))
        .unwrap_err();
    assert!(matches!(err, CrossbarError::RowOutOfRange { row: 7, rows: 2 }));
    let err = exec
        .step(&cim_crossbar::MicroOp::nor_rows(&[0], 0, 0..1))
        .unwrap_err();
    assert!(matches!(
        err,
        CrossbarError::MagicInOutOverlap {
            axis: cim_crossbar::Axis::Row,
            index: 0
        }
    ));
}

/// A fault-free run after clearing an injected fault is clean again
/// (fault injection must not permanently damage simulator state).
#[test]
fn clearing_faults_restores_correctness() {
    let adder = KoggeStoneAdder::new(6);
    let a = Uint::from_u64(42);
    let b = Uint::from_u64(21);
    let mut array = Crossbar::new(adder.required_rows(), adder.required_cols()).unwrap();
    array.inject_fault(5, 2, Some(Fault::StuckAt1)).unwrap();
    array.inject_fault(5, 2, None).unwrap(); // heal
    array.write_row(0, 0, &a.to_bits(7)).unwrap();
    array.write_row(1, 0, &b.to_bits(7)).unwrap();
    let mut exec = Executor::new(&mut array);
    exec.run(&adder.program(AddOp::Add)).unwrap();
    let bits = exec.array().read_row_bits(2, 0..7).unwrap();
    assert_eq!(Uint::from_bits(&bits), Uint::from_u64(63));
}

/// Exhaustive single-fault matrix over one full TMR lane: a stuck-at
/// fault of either polarity at EVERY cell of lane 0 (operands, sum
/// and all 12 scratch rows, every column) must be outvoted by the two
/// clean lanes. The carry-heavy operands 255 + 1 make every carry
/// position observable, so this sweeps the whole single-fault space
/// of a lane rather than sampling it.
#[test]
fn every_single_lane_fault_is_outvoted() {
    use cim_logic::tmr::TmrAdder;

    let width = 8;
    let adder = TmrAdder::new(width);
    let a = Uint::from_u64(255);
    let b = Uint::from_u64(1);
    let lane_rows = 15; // 3 operand/result + 12 scratch rows per lane
    let mut cases = 0;
    for row in 0..lane_rows {
        for col in 0..width + 1 {
            for fault in [Fault::StuckAt0, Fault::StuckAt1] {
                let (sum, _) = adder
                    .add(&a, &b, &[(row, col, fault)])
                    .unwrap_or_else(|e| panic!("({row}, {col}, {fault:?}): {e}"));
                assert_eq!(
                    sum,
                    Uint::from_u64(256),
                    "single fault ({row}, {col}, {fault:?}) must be outvoted"
                );
                cases += 1;
            }
        }
    }
    assert_eq!(cases, lane_rows * (width + 1) * 2, "full matrix covered");
}

/// Endurance accounting survives fault injection: faulty cells still
/// accumulate wear.
#[test]
fn faulty_cells_still_wear() {
    let mut array = Crossbar::new(1, 1).unwrap();
    array.inject_fault(0, 0, Some(Fault::StuckAt0)).unwrap();
    for _ in 0..5 {
        array.write_row(0, 0, &[true]).unwrap();
    }
    assert_eq!(array.cell(0, 0).unwrap().writes(), 5);
    assert!(!array.read_cell(0, 0).unwrap());
}
