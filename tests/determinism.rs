//! Reproducibility guarantees: every experiment in this repository is
//! deterministic — same seeds, same cycle counts, same wear, same
//! results, run to run.

use cim_bigint::rng::UintRng;
use cim_bigint::Uint;
use cim_sched::batch::run_batch;
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;

#[test]
fn seeded_rng_is_stable_across_calls() {
    let take = || {
        let mut rng = UintRng::seeded(0xFEED);
        (0..5).map(|_| rng.uniform(256)).collect::<Vec<Uint>>()
    };
    assert_eq!(take(), take());
}

#[test]
fn simulation_reports_are_bit_identical() {
    let run = || {
        let mult = KaratsubaCimMultiplier::new(64).unwrap();
        let mut rng = UintRng::seeded(7);
        let a = rng.exact_bits(64);
        let b = rng.exact_bits(64);
        mult.multiply(&a, &b).unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(first.product, second.product);
    assert_eq!(first.report.stage_cycles, second.report.stage_cycles);
    assert_eq!(first.report.total_latency, second.report.total_latency);
    for (e1, e2) in first.report.endurance.iter().zip(&second.report.endurance) {
        assert_eq!(e1, e2, "endurance must be deterministic");
    }
}

#[test]
fn batch_throughput_is_deterministic() {
    let run = || {
        let mult = KaratsubaCimMultiplier::new(32).unwrap();
        let mut rng = UintRng::seeded(19);
        let pairs: Vec<(Uint, Uint)> =
            (0..4).map(|_| (rng.uniform(32), rng.uniform(32))).collect();
        run_batch(&mult, &pairs).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan_cycles, b.makespan_cycles);
    assert_eq!(a.max_writes(), b.max_writes());
    assert!((a.throughput_per_mcc - b.throughput_per_mcc).abs() < 1e-12);
}

#[test]
fn farm_scheduler_reports_are_byte_identical() {
    use cim_sched::{FarmConfig, JobMix, Policy, Scheduler};

    // Same seed, same job mix, same policy → the full FarmReport —
    // every per-job record, tile timing and wear counter — must be
    // byte-identical across two independent runs, not merely equal on
    // headline numbers.
    let run = |policy: Policy| {
        let jobs = JobMix::crypto_default(300).generate(60, 21);
        let mut sched = Scheduler::new(FarmConfig::new(8, policy));
        sched.run(&jobs).unwrap()
    };
    for policy in [Policy::Fifo, Policy::LeastLoaded, Policy::WearLeveling] {
        let first = run(policy);
        let second = run(policy);
        assert_eq!(
            format!("{first:?}").into_bytes(),
            format!("{second:?}").into_bytes(),
            "{policy:?} report must be byte-identical run to run"
        );
    }
}

#[test]
fn fuzzer_program_generation_is_deterministic() {
    // The differential-fuzzing generator is part of the repeatability
    // story: a failure seed must replay to the same program.
    let a = cim_check::ProgramGen::new(6, 10, 0xC0FFEE).generate(64);
    let b = cim_check::ProgramGen::new(6, 10, 0xC0FFEE).generate(64);
    assert_eq!(a, b);
}

#[test]
fn miller_rabin_verdicts_are_stable_for_large_candidates() {
    // The >2^64 path uses seeded random bases — must be reproducible.
    let candidate = Uint::pow2(127).sub(&Uint::one()); // Mersenne prime
    assert!(candidate.is_probable_prime(8));
    assert!(candidate.is_probable_prime(8));
    let composite = Uint::pow2(128).sub(&Uint::one());
    assert!(!composite.is_probable_prime(8));
    assert!(!composite.is_probable_prime(8));
}

#[test]
fn rns_basis_generation_is_deterministic() {
    let a = cim_ntt::rns::RnsBasis::generate(3, 28, 8).unwrap();
    let b = cim_ntt::rns::RnsBasis::generate(3, 28, 8).unwrap();
    assert_eq!(a.primes(), b.primes());
}
