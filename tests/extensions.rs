//! Integration tests for the extension layers: the full cryptographic
//! workload paths running end-to-end across crates.

use cim_bigint::rng::UintRng;
use cim_bigint::Uint;
use cim_modmul::ec::{Curve, Point};
use cim_modmul::inmemory::{InMemoryBarrett, InMemoryMontgomery};
use cim_ntt::rns::RnsBasis;
use cim_ntt::rns_poly::RnsPolyContext;
use karatsuba_cim::depth1::KaratsubaDepth1Multiplier;
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;

/// FHE path: a two-limb RNS ciphertext polynomial product where one
/// representative limb multiplication is re-verified on the simulated
/// CIM hardware.
#[test]
fn fhe_rns_polynomial_product_with_hardware_spot_check() {
    let basis = RnsBasis::generate(2, 28, 8).unwrap();
    let ctx = RnsPolyContext::new(basis.clone(), 8).unwrap();
    let mut rng = UintRng::seeded(2001);
    let a: Vec<Uint> = (0..8).map(|_| rng.below(ctx.modulus())).collect();
    let b: Vec<Uint> = (0..8).map(|_| rng.below(ctx.modulus())).collect();

    let pa = ctx.encode(&a);
    let pb = ctx.encode(&b);
    let pc = ctx.mul(&pa, &pb).unwrap();
    assert_eq!(ctx.decode(&pc).unwrap(), ctx.mul_reference(&a, &b));

    // Hardware spot check: limb-0 coefficient products on the 28-bit
    // class pipeline (rounded up to 32).
    let q0 = &basis.primes()[0];
    let hw = KaratsubaCimMultiplier::new(32).unwrap();
    let x = a[0].rem(q0);
    let y = b[0].rem(q0);
    let product = hw.multiply(&x, &y).unwrap().product;
    assert_eq!(product.rem(q0), (&x * &y).rem(q0));
}

/// ZKP path: a pairing-field scalar multiplication where the field
/// multiplications of one group doubling run through the in-memory
/// Montgomery unit.
#[test]
fn zkp_curve_ops_consistent_with_in_memory_field_mul() {
    let curve = Curve::bls12_381_g1().unwrap();
    let p = curve.find_point();
    // Group identity: 7P − 7P = O, computed with ladder + negation.
    let k = Uint::from_u64(7);
    let kp = curve.scalar_mul_ladder(&k, &p);
    let sum = curve.add(&kp, &curve.neg(&kp));
    assert!(sum.is_infinity());

    // The field layer underneath agrees with in-memory Montgomery on
    // Goldilocks (full 381-bit in-memory Montgomery is exercised in
    // the modmul unit tests; here we keep runtime modest).
    let m = cim_modmul::fields::goldilocks();
    let unit = InMemoryMontgomery::new(m.clone()).unwrap();
    let mut rng = UintRng::seeded(2002);
    let x = rng.below(&m);
    let y = rng.below(&m);
    assert_eq!(unit.mul_mod(&x, &y).unwrap(), (&x * &y).rem(&m));
}

/// The two reduction flavors agree through completely disjoint
/// in-memory data paths.
#[test]
fn in_memory_barrett_vs_montgomery_cross_check() {
    let m = cim_modmul::fields::goldilocks();
    let barrett = InMemoryBarrett::new(m.clone()).unwrap();
    let montgomery = InMemoryMontgomery::new(m.clone()).unwrap();
    let mut rng = UintRng::seeded(2003);
    for _ in 0..3 {
        let a = rng.below(&m);
        let b = rng.below(&m);
        let (rb, cycles_b) = barrett.mul_mod(&a, &b).unwrap();
        let rm = montgomery.mul_mod(&a, &b).unwrap();
        assert_eq!(rb, rm);
        assert!(cycles_b > 0);
    }
}

/// Both functional pipeline depths produce identical products and the
/// depth-2 design point has the better simulated ATP at ZKP sizes.
#[test]
fn depth1_and_depth2_agree_and_rank_correctly() {
    let n = 128;
    let mut rng = UintRng::seeded(2004);
    let a = rng.exact_bits(n);
    let b = rng.exact_bits(n);
    let d1 = KaratsubaDepth1Multiplier::new(n).unwrap();
    let d2 = KaratsubaCimMultiplier::new(n).unwrap();
    let o1 = d1.multiply(&a, &b).unwrap();
    let o2 = d2.multiply(&a, &b).unwrap();
    assert_eq!(o1.product, o2.product);
    // Depth 2's multiplier rows are much shorter (practicality).
    assert!(d1.mult_row_length() > 12 * (n / 4 + 2));
}

/// MSM across the curve layer agrees with the modular-arithmetic
/// layer's scalar identities.
#[test]
fn msm_linearity_against_field_layer() {
    let curve = Curve::bls12_381_g1().unwrap();
    let base = curve.find_point();
    let points: Vec<Point> = (1..=4u64)
        .map(|i| curve.scalar_mul(&Uint::from_u64(i), &base))
        .collect();
    let scalars: Vec<Uint> = vec![
        Uint::from_u64(3),
        Uint::from_u64(1),
        Uint::from_u64(4),
        Uint::from_u64(1),
    ];
    // Σ k_i·(i·B) = (Σ k_i·i)·B = (3+2+12+4)·B = 21·B.
    let msm = curve.msm(&scalars, &points, 4);
    let direct = curve.scalar_mul(&Uint::from_u64(21), &base);
    assert!(curve.points_equal(&msm, &direct));
}

/// Squaring fast path through the public API.
#[test]
fn square_equals_multiply_self() {
    let mult = KaratsubaCimMultiplier::new(64).unwrap();
    let mut rng = UintRng::seeded(2005);
    let a = rng.uniform(64);
    assert_eq!(
        mult.square(&a).unwrap().product,
        mult.multiply(&a, &a).unwrap().product
    );
}
