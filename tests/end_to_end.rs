//! Cross-crate integration: the simulated hardware stack (crossbar →
//! MAGIC logic → Karatsuba pipeline) against the software substrate
//! (bigint algorithms), and the cryptographic layer on top of both.

use cim_bigint::mul::{karatsuba, schoolbook, toom};
use cim_bigint::rng::UintRng;
use cim_bigint::Uint;
use cim_modmul::barrett::BarrettContext;
use cim_modmul::montgomery::MontgomeryContext;
use cim_modmul::{fields, ModularReducer};
use karatsuba_cim::multiplier::KaratsubaCimMultiplier;

#[test]
fn simulated_hardware_agrees_with_every_software_algorithm() {
    let mut rng = UintRng::seeded(1001);
    for n in [16usize, 64, 128] {
        let hw = KaratsubaCimMultiplier::new(n).expect("multiplier");
        for _ in 0..2 {
            let a = rng.uniform(n);
            let b = rng.uniform(n);
            let hw_product = hw.multiply(&a, &b).expect("simulate").product;
            assert_eq!(hw_product, schoolbook::mul(&a, &b), "schoolbook n={n}");
            assert_eq!(hw_product, karatsuba::mul(&a, &b), "karatsuba n={n}");
            assert_eq!(hw_product, toom::mul3(&a, &b), "toom n={n}");
        }
    }
}

#[test]
fn montgomery_field_mul_on_simulated_hardware() {
    // A full BN254 field multiplication where the Montgomery product
    // runs on the simulated 256-bit crossbar pipeline.
    let p = fields::bn254_base();
    let ctx = MontgomeryContext::new(p.clone()).expect("odd prime");
    let hw = KaratsubaCimMultiplier::new(256).expect("multiplier");
    let mut rng = UintRng::seeded(1002);
    let a = rng.below(&p);
    let b = rng.below(&p);

    let am = ctx.to_mont(&a);
    let bm = ctx.to_mont(&b);
    let t = hw.multiply(&am, &bm).expect("simulate").product;
    let c = ctx.from_mont(&ctx.redc(&t));
    assert_eq!(c, (&a * &b).rem(&p));
}

#[test]
fn barrett_reduction_of_simulated_product() {
    let p = fields::goldilocks();
    let ctx = BarrettContext::new(p.clone()).expect("modulus");
    let hw = KaratsubaCimMultiplier::new(64).expect("multiplier");
    let mut rng = UintRng::seeded(1003);
    let a = rng.below(&p);
    let b = rng.below(&p);
    let t = hw.multiply(&a, &b).expect("simulate").product;
    assert_eq!(ctx.reduce(&t), (&a * &b).rem(&p));
}

#[test]
fn modular_exponentiation_spot_check_on_hardware_products() {
    // 3^5 mod p via repeated simulated multiplications.
    let p = fields::goldilocks();
    let hw = KaratsubaCimMultiplier::new(64).expect("multiplier");
    let ctx = BarrettContext::new(p.clone()).expect("modulus");
    let mut acc = Uint::from_u64(3);
    for _ in 0..4 {
        let t = hw
            .multiply(&acc, &Uint::from_u64(3))
            .expect("simulate")
            .product;
        acc = ctx.reduce(&t);
    }
    assert_eq!(acc, Uint::from_u64(243));
}

#[test]
fn stage_latencies_compose_into_design_point() {
    for n in [64usize, 256] {
        let hw = KaratsubaCimMultiplier::new(n).expect("multiplier");
        let a = Uint::pow2(n).sub(&Uint::one());
        let out = hw.multiply(&a, &a).expect("simulate");
        let d = hw.design_point();
        assert_eq!(out.report.stage_cycles[0], d.precompute_latency, "n={n}");
        assert_eq!(out.report.stage_cycles[1], d.multiply_latency, "n={n}");
        // Postcompute measured within 5% of the paper's closed form.
        let delta = (out.report.stage_cycles[2] as f64 - d.postcompute_latency as f64).abs()
            / d.postcompute_latency as f64;
        assert!(delta < 0.05, "n={n}: post delta {delta}");
    }
}

#[test]
fn umbrella_crate_reexports_work() {
    // The root cim-suite crate re-exports every public crate.
    let a = cim_suite::bigint::Uint::from_u64(6);
    let b = cim_suite::bigint::Uint::from_u64(7);
    let hw = cim_suite::karatsuba::multiplier::KaratsubaCimMultiplier::new(16).expect("mult");
    assert_eq!(hw.multiply(&a, &b).expect("simulate").product, Uint::from_u64(42));
}
