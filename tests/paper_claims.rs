//! Every numerical claim made in the paper, asserted against this
//! reproduction. Claims are grouped by paper section; each test cites
//! the sentence it checks.

use cim_baselines::{Imaging, MultPim, MultiplierModel, OurKaratsuba, WallaceMajority};
use cim_bigint::opcount::{karatsuba_unrolled_counts, toom_counts};
use cim_logic::kogge_stone::KoggeStoneAdder;
use cim_logic::multpim::RowMultiplier;
use karatsuba_cim::cost::{DepthCostModel, DesignPoint};

/// Abstract: "our design achieves up to 916× in throughput and 281× in
/// area-time product improvements."
#[test]
fn abstract_headline_factors() {
    let ours = OurKaratsuba;
    let tput_gain = ours.throughput_per_mcc(384) / Imaging.throughput_per_mcc(384);
    // The paper computes 916× from unrounded [7] throughput (0.523
    // mult/Mcc); from the printed 0.5 the factor is 958×. Both bracket
    // our model:
    assert!((900.0..=960.0).contains(&tput_gain), "{tput_gain}");
    let atp_gain = Imaging.atp(384) / ours.atp(384);
    assert!((270.0..=295.0).contains(&atp_gain), "{atp_gain}");
}

/// Sec. II-C: "a n = 384-bit multiplication requires a bit line with
/// 5,369 memristors" (MultPIM).
#[test]
fn multpim_row_length() {
    assert_eq!(MultPim.max_row_length(384), Some(5369));
}

/// Sec. III-B: "interpolation requires 25, 49, and 81 multiplications
/// for k = 3, 4, and 5."
#[test]
fn toom_interpolation_counts() {
    assert_eq!(toom_counts(3).interpolation_multiplications, 25);
    assert_eq!(toom_counts(4).interpolation_multiplications, 49);
    assert_eq!(toom_counts(5).interpolation_multiplications, 81);
}

/// Sec. III-C2: "we need 9, 27, and 81 multiplications and 10, 38, and
/// 140 additions in precomputation for L = 2, 3, and 4."
#[test]
fn unrolled_karatsuba_op_counts() {
    for (l, mults, adds) in [(2u32, 9, 10), (3, 27, 38), (4, 81, 140)] {
        let c = karatsuba_unrolled_counts(l);
        assert_eq!(c.multiplications, mults, "L={l}");
        assert_eq!(c.precompute_additions, adds, "L={l}");
    }
}

/// Sec. III-C2 / Fig. 4: "L = 2 leads to the lowest ATP across
/// cryptographically relevant multiplication sizes."
#[test]
fn depth_two_is_the_design_point() {
    for n in [192usize, 256, 320, 384] {
        let best = (1..=4u32)
            .min_by(|&a, &b| {
                DepthCostModel::new(n, a)
                    .atp()
                    .partial_cmp(&DepthCostModel::new(n, b).atp())
                    .expect("finite")
            })
            .expect("non-empty");
        assert_eq!(best, 2, "n = {n}");
    }
}

/// Sec. IV-B: "our n-bit Kogge-Stone adder has an overall latency of
/// 8 + 11⌈log2(n)⌉ + 9 cc" on "n+1 columns" with "12 rows" of scratch.
#[test]
fn kogge_stone_latency_and_geometry() {
    for n in [4usize, 64, 97, 384] {
        let adder = KoggeStoneAdder::new(n);
        let levels = (usize::BITS - (n - 1).leading_zeros()) as u64;
        assert_eq!(adder.latency(), 8 + 11 * levels + 9, "n={n}");
        assert_eq!(adder.required_cols(), n + 1, "n={n}");
    }
    assert_eq!(cim_logic::kogge_stone::SCRATCH_ROWS, 12);
}

/// Sec. IV-C: "a precomputation array dimension of (8+10+12) × (n/4+2)
/// ... in n = 256-bit multiplication, the precomputation array
/// consumes 1,980 memristors" and latency
/// "8 + 10(17 + 11⌈log2(n/4+1)⌉) + 1 cc".
#[test]
fn precompute_stage_formulas() {
    let d = DesignPoint::new(256);
    assert_eq!(d.precompute_area, 1980);
    assert_eq!(d.precompute_latency, 8 + 10 * (17 + 11 * 7) + 1);
}

/// Sec. IV-D: multiplication stage area "9 × 12(n/4+2)" and latency
/// "(n/4+2)·(⌈log2(n/4+2)⌉ + 14) + 3 cc".
#[test]
fn multiply_stage_formulas() {
    for n in [64usize, 128, 256, 384] {
        let d = DesignPoint::new(n);
        let w = (n / 4 + 2) as u64;
        assert_eq!(d.multiply_area, 9 * 12 * w, "n={n}");
        let levels = (usize::BITS - (n / 4 + 2 - 1).leading_zeros()) as u64;
        assert_eq!(d.multiply_latency, w * (levels + 14) + 3, "n={n}");
    }
}

/// Sec. IV-E: postcomputation area "(8+12) × 1.5n" (25% saved by the
/// LSB optimization) and latency "121⌈log2(1.5n)⌉ + 187 + 18 cc".
#[test]
fn postcompute_stage_formulas() {
    for n in [64usize, 384] {
        let d = DesignPoint::new(n);
        assert_eq!(d.postcompute_area, 20 * 3 * n as u64 / 2, "n={n}");
        let levels = (usize::BITS - (3 * n / 2 - 1).leading_zeros()) as u64;
        assert_eq!(d.postcompute_latency, 121 * levels + 187 + 18, "n={n}");
        // LSB optimization: a naive 2n-wide stage would be 1/3 larger.
        let naive = 20 * 2 * n as u64;
        assert!((naive - d.postcompute_area) * 4 == naive, "exactly 25% saved");
    }
}

/// Table I, "Our" rows: throughput 927/833/706/479 mult/Mcc, area
/// 4,404/8,532/16,788/25,044 cells, ATP 4.8/10/24/52, max writes
/// 81/92/134/198.
#[test]
fn table1_our_rows_exact() {
    let expect = [
        (64usize, 927u64, 4_404u64, 4.8f64, 81u64),
        (128, 833, 8_532, 10.0, 92),
        (256, 706, 16_788, 24.0, 134),
        (384, 479, 25_044, 52.0, 198),
    ];
    for (n, tput, area, atp, writes) in expect {
        let d = DesignPoint::new(n);
        assert_eq!(d.throughput_per_mcc().round() as u64, tput, "n={n}");
        assert_eq!(d.area_cells(), area, "n={n}");
        assert!((d.atp() - atp).abs() < 0.55, "n={n}: atp {}", d.atp());
        assert_eq!(d.max_writes, writes, "n={n}");
    }
}

/// Table I, baseline anchor rows (areas are the crisp ones).
#[test]
fn table1_baseline_areas_exact() {
    assert_eq!(Imaging.area_cells(64), 1_275);
    assert_eq!(Imaging.area_cells(384), 7_675);
    assert_eq!(MultPim.area_cells(64), 889);
    assert_eq!(WallaceMajority.area_cells(128), 131_312);
}

/// Sec. V: "[8] ... requiring up to 1.2 million memory cells ...
/// 47× larger than our design for n = 384."
#[test]
fn wallace_area_factor() {
    let ratio = WallaceMajority.area_cells(384) as f64 / OurKaratsuba.area_cells(384) as f64;
    assert!((45.0..=49.0).contains(&ratio), "{ratio}");
}

/// Sec. V: "our design reduces the memory row length by 4× and
/// decreases write operations by up to 7.8×" (vs [9], n = 384).
#[test]
fn multpim_row_and_write_factors() {
    let ours = OurKaratsuba;
    let row_factor =
        MultPim.max_row_length(384).unwrap() as f64 / ours.max_row_length(384).unwrap() as f64;
    assert!(row_factor >= 4.0, "{row_factor}");
    let write_factor =
        MultPim.max_writes(384).unwrap() as f64 / ours.max_writes(384).unwrap() as f64;
    assert!((7.5..=8.0).contains(&write_factor), "{write_factor}");
}

/// Sec. V: vs [6] "throughput between 3.8× and 17×", "area up to
/// 11.8× lower", "ATP improves by 7× to 204×".
#[test]
fn imply_serial_factors() {
    let ours = OurKaratsuba;
    let six = cim_baselines::ImplySerial;
    let t64 = ours.throughput_per_mcc(64) / six.throughput_per_mcc(64);
    let t384 = ours.throughput_per_mcc(384) / six.throughput_per_mcc(384);
    assert!((3.6..=4.0).contains(&t64), "{t64}");
    assert!((16.5..=17.5).contains(&t384), "{t384}");
    let area384 = six.area_cells(384) as f64 / ours.area_cells(384) as f64;
    assert!((11.0..=12.5).contains(&area384), "{area384}");
    let atp64 = six.atp(64) / ours.atp(64);
    let atp384 = six.atp(384) / ours.atp(384);
    assert!((6.5..=7.5).contains(&atp64), "{atp64}");
    assert!((195.0..=210.0).contains(&atp384), "{atp384}");
}

/// Sec. V: vs [7] "between 49× and 916× higher throughput at the cost
/// of 3.5× more area; ... 14× to 281× better ATP ... max write
/// operations 1.6× to 5.2× less."
#[test]
fn imaging_factors() {
    let ours = OurKaratsuba;
    let t64 = ours.throughput_per_mcc(64) / Imaging.throughput_per_mcc(64);
    assert!((47.0..=50.0).contains(&t64), "{t64}");
    let area64 = ours.area_cells(64) as f64 / Imaging.area_cells(64) as f64;
    assert!((3.2..=3.6).contains(&area64), "{area64}");
    let atp64 = Imaging.atp(64) / ours.atp(64);
    assert!((13.0..=15.0).contains(&atp64), "{atp64}");
    let w64 = Imaging.max_writes(64).unwrap() as f64 / ours.max_writes(64).unwrap() as f64;
    let w384 = Imaging.max_writes(384).unwrap() as f64 / ours.max_writes(384).unwrap() as f64;
    assert!((1.5..=1.7).contains(&w64), "{w64}");
    assert!((5.0..=5.4).contains(&w384), "{w384}");
}

/// Sec. IV-D: the paper's optimized in-row multiplier uses 12 cells
/// per bit (vs MultPIM's ~14).
#[test]
fn row_multiplier_density() {
    let w = 66; // n = 256 stage width
    assert_eq!(RowMultiplier::new(w).required_cols(), 12 * w);
    assert!(RowMultiplier::new(384).required_cols() < MultPim.area_cells(384) as usize);
}
