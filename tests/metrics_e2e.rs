//! End-to-end metrics pipeline: one [`MetricsHub`] fed by all three
//! layers — crossbar executors (via the core multiplier's stage
//! re-publication), the core multiplier, and a 4-tile farm scheduler —
//! must render a grammar-valid Prometheus exposition containing cycle,
//! energy, queue-depth, and latency-histogram families from every
//! layer; the whole pipeline must be deterministic and must never
//! change a simulation result.

use cim_bigint::rng::UintRng;
use cim_crossbar::EnergyParams;
use cim_metrics::{prometheus, MetricsHub};
use cim_sched::{FarmConfig, FarmReport, JobMix, Policy, Scheduler};
use karatsuba_cim::multiplier::{KaratsubaCimMultiplier, MultiplyOutcome};

/// Runs the fixed workload: one verified 64-bit multiplication on the
/// simulated crossbars, then a 4-tile wear-leveling farm serving 48
/// mixed-width jobs.
fn run_workload(hub: &MetricsHub) -> (MultiplyOutcome, FarmReport) {
    let mut mult = KaratsubaCimMultiplier::new(64).expect("64 is a paper width");
    mult.attach_metrics(hub, EnergyParams::default());
    let mut rng = UintRng::seeded(7);
    let a = rng.uniform(64);
    let b = rng.uniform(64);
    let outcome = mult.multiply(&a, &b).expect("verified product");

    let jobs = JobMix::crypto_default(300).generate(48, 5);
    let mut sched = Scheduler::new(FarmConfig::new(4, Policy::WearLeveling).with_queue_depth(8));
    sched.attach_metrics(hub);
    let report = sched.run(&jobs).expect("analytic profiles");
    (outcome, report)
}

#[test]
fn prometheus_exposition_covers_all_three_layers() {
    let hub = MetricsHub::recording();
    let (_, farm) = run_workload(&hub);
    assert_eq!(farm.tiles, 4);

    let text = prometheus::render(&hub.snapshot());
    let stats = prometheus::check(&text).expect("exposition must satisfy the text-format grammar");
    assert!(stats.families >= 10, "only {} families", stats.families);
    assert!(stats.histogram_series >= 3, "histograms from core and sched");

    for family in [
        // crossbar layer (stage executors re-published by the core)
        "cim_xbar_cycles_total",
        "cim_xbar_energy_pj_total",
        // core layer
        "cim_core_stage_cycles",
        "cim_core_total_latency_cycles",
        "cim_core_energy_pj_total",
        // scheduler layer
        "cim_sched_job_latency_cycles",
        "cim_sched_queue_depth_peak",
        "cim_sched_tile_cycles_total",
        "cim_sched_tile_energy_pj_total",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} ")),
            "missing family {family}"
        );
    }
    // The latency histogram renders cumulative buckets with the
    // terminal +Inf bucket and the _sum/_count pair.
    assert!(text.contains("cim_sched_job_latency_cycles_bucket"));
    assert!(text.contains("le=\"+Inf\""));
    assert!(text.contains("cim_sched_job_latency_cycles_count"));
    // All four tiles report cycle counters.
    for tile in 0..4 {
        assert!(
            text.contains(&format!("tile=\"{tile}\"")),
            "tile {tile} missing from exposition"
        );
    }
}

#[test]
fn metrics_pipeline_is_deterministic() {
    // The `cim_core_progcache_*` gauges are *process-wide* compiled-
    // program cache totals by design (hits accumulate across every
    // multiply in the process, including the other tests in this
    // binary), so they are the one family excluded from the per-run
    // bit-identity check — their presence is asserted instead.
    let once = || {
        let hub = MetricsHub::recording();
        run_workload(&hub);
        let mut snap = hub.snapshot();
        let had_progcache = snap
            .families
            .iter()
            .any(|f| f.name.starts_with("cim_core_progcache_"));
        assert!(had_progcache, "progcache gauges published with the report");
        snap.families.retain(|f| !f.name.starts_with("cim_core_progcache_"));
        (prometheus::render(&snap), snap.to_json())
    };
    let (prom_a, json_a) = once();
    let (prom_b, json_b) = once();
    assert_eq!(prom_a, prom_b, "exposition must be bit-identical across runs");
    assert_eq!(json_a, json_b, "JSON snapshot must be bit-identical across runs");
    // The JSON snapshot is well-formed and machine-readable.
    cim_trace::json::check(&json_a).expect("snapshot JSON parses");
    cim_metrics::jsonval::JsonValue::parse(&json_a).expect("snapshot JSON parses structurally");
}

#[test]
fn metrics_never_change_simulation_results() {
    let plain_mult = {
        let mult = KaratsubaCimMultiplier::new(64).unwrap();
        let mut rng = UintRng::seeded(7);
        let (a, b) = (rng.uniform(64), rng.uniform(64));
        mult.multiply(&a, &b).unwrap()
    };
    let plain_farm = {
        let jobs = JobMix::crypto_default(300).generate(48, 5);
        Scheduler::new(FarmConfig::new(4, Policy::WearLeveling).with_queue_depth(8))
            .run(&jobs)
            .unwrap()
    };

    let hub = MetricsHub::recording();
    let (metered_mult, metered_farm) = run_workload(&hub);
    assert_eq!(
        plain_mult.report, metered_mult.report,
        "metrics must not change the ExecutionReport"
    );
    assert_eq!(plain_mult.product, metered_mult.product);
    assert_eq!(
        plain_farm, metered_farm,
        "metrics must not change the FarmReport"
    );
    assert!(!hub.snapshot().families.is_empty());

    // A disabled hub records nothing and changes nothing either.
    let disabled = MetricsHub::disabled();
    let (off_mult, off_farm) = run_workload(&disabled);
    assert_eq!(plain_mult.report, off_mult.report);
    assert_eq!(plain_farm, off_farm);
    assert!(disabled.snapshot().families.is_empty());
}
