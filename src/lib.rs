//! # cim-suite — umbrella crate for the Karatsuba CIM reproduction
//!
//! This crate hosts the repository-level [examples](https://example.invalid)
//! and cross-crate integration tests. It re-exports the public crates so
//! examples can use one import root.

#![forbid(unsafe_code)]

pub use cim_baselines as baselines;
pub use cim_bigint as bigint;
pub use cim_crossbar as crossbar;
pub use cim_logic as logic;
pub use cim_modmul as modmul;
pub use cim_ntt as ntt;
pub use karatsuba_cim as karatsuba;
